//! Lightweight event tracing for debugging simulated schedules.

use std::collections::VecDeque;
use std::fmt;

use crate::SimInstant;

/// Default ring-buffer capacity for an enabled [`Tracer`].
///
/// Long-running scenarios (the bench binaries fault millions of pages)
/// previously grew the trace without bound; a bounded ring keeps the
/// most recent window, which is what post-mortem debugging wants anyway.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: SimInstant,
    /// Component that emitted the event (e.g. `"monitor"`).
    pub component: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.component, self.message)
    }
}

/// An opt-in event recorder backed by a bounded ring buffer.
///
/// Disabled tracers skip formatting entirely, so traces can stay in hot
/// paths without cost when off. Enabled tracers keep the most recent
/// [`DEFAULT_TRACE_CAPACITY`] events (configurable via
/// [`Tracer::set_capacity`]); older events are discarded and counted in
/// [`Tracer::dropped`].
///
/// # Example
///
/// ```
/// use fluidmem_sim::{Tracer, SimInstant};
///
/// let mut t = Tracer::enabled();
/// t.emit(SimInstant::EPOCH, "monitor", || "fault at 0x1000".to_string());
/// assert_eq!(t.events().len(), 1);
///
/// let mut off = Tracer::disabled();
/// off.emit(SimInstant::EPOCH, "monitor", || unreachable!());
/// assert!(off.events().is_empty());
/// ```
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records events.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            capacity: DEFAULT_TRACE_CAPACITY,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A tracer that drops events without evaluating their messages.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            capacity: DEFAULT_TRACE_CAPACITY,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the ring capacity, evicting the oldest events if the
    /// buffer already exceeds the new bound. A capacity of zero retains
    /// nothing (every emit is counted as dropped).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.events.len() > capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    /// How many events have been evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records an event; the message closure is only invoked when enabled.
    pub fn emit<F: FnOnce() -> String>(
        &mut self,
        at: SimInstant,
        component: &'static str,
        message: F,
    ) {
        if !self.enabled {
            return;
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            component,
            message: message(),
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Drops all recorded events (the dropped counter is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn records_when_enabled() {
        let mut t = Tracer::enabled();
        t.emit(
            SimInstant::EPOCH + SimDuration::from_micros(3),
            "kv",
            || "put".into(),
        );
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].component, "kv");
        assert!(t.events()[0].to_string().contains("put"));
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn skips_message_construction_when_disabled() {
        let mut t = Tracer::disabled();
        let mut called = false;
        t.emit(SimInstant::EPOCH, "x", || {
            called = true;
            String::new()
        });
        assert!(!called);
        assert!(!t.is_enabled());
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let mut t = Tracer::enabled();
        t.set_capacity(3);
        for i in 0..5 {
            t.emit(SimInstant::EPOCH, "x", || format!("e{i}"));
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.events()[0].message, "e2");
        assert_eq!(t.events()[2].message, "e4");
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut t = Tracer::enabled();
        for i in 0..4 {
            t.emit(SimInstant::EPOCH, "x", || format!("e{i}"));
        }
        t.set_capacity(2);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.events()[0].message, "e2");
        t.set_capacity(0);
        t.emit(SimInstant::EPOCH, "x", || "gone".into());
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 5);
    }

    #[test]
    fn default_capacity_is_bounded() {
        let t = Tracer::enabled();
        assert_eq!(t.capacity(), DEFAULT_TRACE_CAPACITY);
    }
}
