//! Lightweight event tracing for debugging simulated schedules.

use std::fmt;

use crate::SimInstant;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: SimInstant,
    /// Component that emitted the event (e.g. `"monitor"`).
    pub component: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.component, self.message)
    }
}

/// An opt-in event recorder.
///
/// Disabled tracers skip formatting entirely, so traces can stay in hot
/// paths without cost when off.
///
/// # Example
///
/// ```
/// use fluidmem_sim::{Tracer, SimInstant};
///
/// let mut t = Tracer::enabled();
/// t.emit(SimInstant::EPOCH, "monitor", || "fault at 0x1000".to_string());
/// assert_eq!(t.events().len(), 1);
///
/// let mut off = Tracer::disabled();
/// off.emit(SimInstant::EPOCH, "monitor", || unreachable!());
/// assert!(off.events().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// A tracer that records events.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A tracer that drops events without evaluating their messages.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event; the message closure is only invoked when enabled.
    pub fn emit<F: FnOnce() -> String>(
        &mut self,
        at: SimInstant,
        component: &'static str,
        message: F,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                component,
                message: message(),
            });
        }
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn records_when_enabled() {
        let mut t = Tracer::enabled();
        t.emit(
            SimInstant::EPOCH + SimDuration::from_micros(3),
            "kv",
            || "put".into(),
        );
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].component, "kv");
        assert!(t.events()[0].to_string().contains("put"));
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn skips_message_construction_when_disabled() {
        let mut t = Tracer::disabled();
        let mut called = false;
        t.emit(SimInstant::EPOCH, "x", || {
            called = true;
            String::new()
        });
        assert!(!called);
        assert!(!t.is_enabled());
    }
}
