//! Statistics collectors used by the experiment harnesses.
//!
//! Three collectors cover the paper's reporting needs:
//!
//! * [`Summary`] — constant-space streaming mean/stdev/min/max (Welford),
//!   used by the monitor's per-code-path profiler (Table I).
//! * [`Sample`] — a full sample retaining every value, for exact
//!   percentiles and harmonic means (Tables I–II, Figure 4).
//! * [`LatencyHistogram`] — log-spaced buckets from 100 ns to 10 s,
//!   producing the latency CDFs of Figure 3.

use crate::SimDuration;

/// Constant-space streaming summary statistics (Welford's algorithm).
///
/// # Example
///
/// ```
/// use fluidmem_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert!((s.stdev() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a duration, in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 if fewer than two observations).
    pub fn stdev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A sample that retains all observations for exact order statistics.
///
/// # Example
///
/// ```
/// use fluidmem_sim::stats::Sample;
///
/// let mut s = Sample::new();
/// for v in 1..=100 {
///     s.record(v as f64);
/// }
/// assert_eq!(s.percentile(0.5), 50.5);
/// assert!((s.percentile(0.99) - 99.01).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sample {
    values: Vec<f64>,
    sorted: bool,
}

impl Sample {
    /// Creates an empty sample.
    pub fn new() -> Self {
        Sample {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Records a duration, in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Sample standard deviation (0 if fewer than two observations).
    pub fn stdev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self.values.iter().map(|v| (v - mean) * (v - mean)).sum();
        (ss / (n - 1) as f64).sqrt()
    }

    /// Harmonic mean — the aggregation the Graph500 specification uses for
    /// TEPS across BFS roots (0 if empty; requires strictly positive
    /// observations to be meaningful).
    pub fn harmonic_mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let recip: f64 = self.values.iter().map(|v| 1.0 / v).sum();
        self.values.len() as f64 / recip
    }

    /// Exact percentile by nearest-rank interpolation. `p` is in `[0, 1]`.
    ///
    /// Returns 0 for an empty sample.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 1.0);
        let rank = p * (self.values.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.values[lo]
        } else {
            let frac = rank - lo as f64;
            self.values[lo] * (1.0 - frac) + self.values[hi] * frac
        }
    }

    /// The raw observations, in insertion order if never sorted.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
            self.sorted = true;
        }
    }
}

impl FromIterator<f64> for Sample {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Sample::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Sample {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Harmonic mean of a slice (0 if empty).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// A log-spaced latency histogram spanning 100 ns – 10 s.
///
/// Matches how the paper's Figure 3 plots page-fault latency: log-scale
/// x-axis from 0.1 µs to beyond 100 µs, y-axis the cumulative fraction of
/// faults.
///
/// # Example
///
/// ```
/// use fluidmem_sim::stats::LatencyHistogram;
/// use fluidmem_sim::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// h.record(SimDuration::from_micros(1));
/// h.record(SimDuration::from_micros(30));
/// let cdf = h.cdf();
/// assert_eq!(cdf.last().unwrap().1, 1.0);
/// assert!((h.mean_us() - 15.5).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Bucket counts; bucket i covers [edge(i), edge(i+1)).
    counts: Vec<u64>,
    total: u64,
    sum_us: f64,
    min: SimDuration,
    max: SimDuration,
}

/// Number of buckets per decade in [`LatencyHistogram`].
const BUCKETS_PER_DECADE: usize = 40;
/// Lowest representable latency (100 ns).
const LOW_NS: f64 = 100.0;
/// Number of decades covered (100 ns → 10 s is 8 decades).
const DECADES: usize = 8;

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS_PER_DECADE * DECADES + 2],
            total: 0,
            sum_us: 0.0,
            min: SimDuration::from_nanos(u64::MAX),
            max: SimDuration::ZERO,
        }
    }

    fn bucket_of(d: SimDuration) -> usize {
        let ns = d.as_nanos() as f64;
        if ns < LOW_NS {
            return 0;
        }
        let pos = (ns / LOW_NS).log10() * BUCKETS_PER_DECADE as f64;
        let idx = pos.floor() as usize + 1;
        idx.min(BUCKETS_PER_DECADE * DECADES + 1)
    }

    /// The latency at the lower edge of bucket `i`, in microseconds.
    fn bucket_edge_us(i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let ns = LOW_NS * 10f64.powf((i - 1) as f64 / BUCKETS_PER_DECADE as f64);
        ns / 1_000.0
    }

    /// Records one latency observation.
    pub fn record(&mut self, d: SimDuration) {
        self.counts[Self::bucket_of(d)] += 1;
        self.total += 1;
        self.sum_us += d.as_micros_f64();
        if d < self.min {
            self.min = d;
        }
        if d > self.max {
            self.max = d;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact arithmetic mean, in microseconds (tracked outside the buckets).
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us / self.total as f64
        }
    }

    /// Smallest recorded latency (zero if empty).
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            self.min
        }
    }

    /// Largest recorded latency.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// The cumulative distribution as `(latency_us, fraction)` points,
    /// one per non-empty bucket edge.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut points = Vec::new();
        if self.total == 0 {
            return points;
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            points.push((Self::bucket_edge_us(i + 1), cum as f64 / self.total as f64));
        }
        points
    }

    /// Approximate percentile (bucket-edge resolution). `p` in `[0, 1]`.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return Self::bucket_edge_us(i + 1);
            }
        }
        Self::bucket_edge_us(self.counts.len())
    }

    /// The fraction of observations at or below `threshold`.
    pub fn fraction_below(&self, threshold: SimDuration) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cut = Self::bucket_of(threshold);
        let below: u64 = self.counts[..=cut].iter().sum();
        below as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        if other.total > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stdev() - 2.138).abs() < 0.001);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stdev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut c = Summary::new();
        for v in 0..100 {
            let x = (v as f64).sin() * 10.0;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            c.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-9);
        assert!((a.stdev() - c.stdev()).abs() < 1e-9);
    }

    #[test]
    fn sample_percentiles_exact() {
        let mut s: Sample = (1..=1000).map(|v| v as f64).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 1000.0);
        assert!((s.percentile(0.99) - 990.01).abs() < 0.02);
    }

    #[test]
    fn sample_harmonic_mean() {
        let s: Sample = [1.0, 4.0, 4.0].into_iter().collect();
        assert!((s.harmonic_mean() - 2.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[1.0, 4.0, 4.0]), s.harmonic_mean());
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn histogram_cdf_monotone_and_complete() {
        let mut h = LatencyHistogram::new();
        let mut rng = crate::SimRng::seed_from_u64(1);
        let m = crate::LatencyModel::uniform_us(0.5, 80.0);
        for _ in 0..10_000 {
            h.record(m.sample(&mut rng));
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0, "x must increase");
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile_tracks_distribution() {
        let mut h = LatencyHistogram::new();
        for us in 1..=100u64 {
            h.record(SimDuration::from_micros(us));
        }
        let p50 = h.percentile_us(0.5);
        assert!((p50 - 50.0).abs() / 50.0 < 0.1, "p50 {p50}");
        let p99 = h.percentile_us(0.99);
        assert!((p99 - 99.0).abs() / 99.0 < 0.1, "p99 {p99}");
    }

    #[test]
    fn histogram_fraction_below() {
        let mut h = LatencyHistogram::new();
        for _ in 0..25 {
            h.record(SimDuration::from_micros(1));
        }
        for _ in 0..75 {
            h.record(SimDuration::from_micros(50));
        }
        let f = h.fraction_below(SimDuration::from_micros(10));
        assert!((f - 0.25).abs() < 0.01, "{f}");
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(1));
        b.record(SimDuration::from_micros(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_us() - 2.0).abs() < 1e-9);
        assert_eq!(a.min(), SimDuration::from_micros(1));
        assert_eq!(a.max(), SimDuration::from_micros(3));
    }

    #[test]
    fn histogram_extremes_clamp_to_end_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_secs(100));
        assert_eq!(h.count(), 2);
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 2);
    }
}
