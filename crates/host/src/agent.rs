//! The host agent: N VMs' monitors multiplexed over one shared store.
//!
//! This is the deployment the paper describes but never packages: a
//! cloud host runs many VMs, each with its own FluidMem monitor, all of
//! them keyed into **one** key-value store through per-VM partitions
//! (§IV: "multiple VMs [share] the same key-value store"). The agent
//! owns the pieces that make that safe and fast:
//!
//! * a [`SharedStore`] handle per VM, so every monitor really does hit
//!   the same remote memory;
//! * coordination state: each VM's [`PartitionId`] comes from the
//!   replicated [`PartitionTable`], and its liveness is a lease znode
//!   under the host's [`HostDirectory`] (watch-driven membership);
//! * a deterministic interleave of the VMs' fault streams on the shared
//!   [`SimClock`] — smooth weighted round-robin, so a weight-4 VM issues
//!   4/7 of the accesses in a 4:1:1:1 fleet without bursts;
//! * the [DRAM arbiter](crate::plan): every `rebalance_interval` host
//!   ops the agent snapshots each VM's windowed [`VmSignals`], plans new
//!   capacities under the configured [`ArbiterPolicy`], and applies them
//!   through `Monitor::resize` — shrinks before grows, so the host is
//!   never over-committed mid-apply.
//!
//! Everything is driven by `SimClock`/`SimRng`; two runs with the same
//! seeds are bit-identical, which the scaling bench relies on.

use fluidmem_coord::{
    CoordCluster, HostDirectory, PartitionId, PartitionTable, StoreDirectory, VmIdentity, VmLease,
    WatchKind,
};
use fluidmem_core::{FluidMemMemory, MonitorConfig, VmSignals};
use fluidmem_kv::{AuditReport, ClusterHandle, KeyValueStore, NodeId, SharedStore, StoreStats};
use fluidmem_mem::{AccessOutcome, MemoryBackend, PageClass, Region};
use fluidmem_sim::stats::Sample;
use fluidmem_sim::{EventQueue, SimClock, SimDuration, SimInstant, SimRng};
use fluidmem_telemetry::{consts, Counter, Gauge, Registry, Telemetry};
use fluidmem_vm::Balloon;

use crate::arbiter::{self, ArbiterConfig, ArbiterPolicy, VmDemand};

/// Host-wide configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Hypervisor id, used for partition identities and the coord
    /// membership directory.
    pub host_id: u64,
    /// Host DRAM available to VM LRU buffers, in pages.
    pub dram_pages: u64,
    /// Per-VM minimum capacity guarantee (see [`ArbiterConfig`]).
    pub min_pages_per_vm: u64,
    /// The arbiter policy.
    pub policy: ArbiterPolicy,
    /// Rebalance every this many host ops (`0` disables the arbiter).
    pub rebalance_interval: u64,
    /// Drive the store-node cluster — lease heartbeats and sweep, watch
    /// events, copier ticks, routing flips — every this many host ops
    /// (`0` disables; only meaningful for hosts built with
    /// [`HostAgent::with_cluster`]). The sweep reads the lease directory
    /// through the coordination service, which charges RTTs on the
    /// shared clock, so this stays a cadence rather than per-op work.
    pub cluster_interval: u64,
    /// The per-VM monitor configuration (capacity is overridden by the
    /// arbiter's grants).
    pub monitor: MonitorConfig,
}

impl HostConfig {
    /// A default host: proportional arbiter, min guarantee 16 pages,
    /// rebalance every 1024 ops.
    pub fn new(dram_pages: u64) -> Self {
        HostConfig {
            host_id: 1,
            dram_pages,
            min_pages_per_vm: 16,
            policy: ArbiterPolicy::FaultRateProportional,
            rebalance_interval: 1024,
            cluster_interval: 256,
            monitor: MonitorConfig::new(dram_pages),
        }
    }

    /// Sets the arbiter policy.
    pub fn policy(mut self, policy: ArbiterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-VM minimum guarantee.
    pub fn min_pages(mut self, pages: u64) -> Self {
        self.min_pages_per_vm = pages;
        self
    }

    /// Sets the rebalance cadence in host ops (`0` disables).
    pub fn rebalance_interval(mut self, ops: u64) -> Self {
        self.rebalance_interval = ops;
        self
    }

    /// Sets the cluster-maintenance cadence in host ops (`0` disables).
    pub fn cluster_interval(mut self, ops: u64) -> Self {
        self.cluster_interval = ops;
        self
    }

    /// Sets the hypervisor id.
    pub fn host_id(mut self, id: u64) -> Self {
        self.host_id = id;
        self
    }

    /// Sets the per-VM monitor configuration.
    pub fn monitor(mut self, monitor: MonitorConfig) -> Self {
        self.monitor = monitor;
        self
    }

    /// Enables watermark-driven background reclaim in every VM's
    /// monitor. Arbiter capacity retargets then kick each VM's
    /// background evictor (through `Monitor::resize`) instead of
    /// evicting inline on the agent's timeline.
    pub fn reclaim(mut self, cfg: fluidmem_core::ReclaimConfig) -> Self {
        self.monitor = self.monitor.reclaim(cfg);
        self
    }

    /// Enables the compressed local tier in every VM's monitor. The
    /// config's `max_bytes` is the *host-wide* pool budget: the agent
    /// splits it into per-VM quotas in proportion to each VM's DRAM
    /// grant, and re-splits on every arbiter rebalance.
    pub fn tier(mut self, cfg: fluidmem_core::TierConfig) -> Self {
        self.monitor = self.monitor.tier(cfg);
        self
    }
}

/// One VM's workload description.
#[derive(Debug, Clone)]
pub struct VmSpec {
    /// Unique VM name (telemetry label, RNG fork key).
    pub name: String,
    /// Working-set size in pages; accesses are uniform over it.
    pub wss_pages: u64,
    /// Round-robin weight: a weight-4 VM among weight-1 peers issues
    /// 4/7 of the host's accesses.
    pub weight: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Optional p99 fault-latency SLO target in microseconds. Read only
    /// by the [`ArbiterPolicy::SloGuarded`] policy; VMs without a target
    /// are the throttleable best-effort tier.
    pub slo_p99_us: Option<f64>,
}

impl VmSpec {
    /// A weight-1, 30%-write VM.
    pub fn new(name: impl Into<String>, wss_pages: u64) -> Self {
        VmSpec {
            name: name.into(),
            wss_pages,
            weight: 1,
            write_fraction: 0.3,
            slo_p99_us: None,
        }
    }

    /// Sets the round-robin weight.
    pub fn weight(mut self, weight: u64) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the write fraction.
    pub fn write_fraction(mut self, fraction: f64) -> Self {
        self.write_fraction = fraction;
        self
    }

    /// Gives the VM a p99 fault-latency SLO target, in microseconds.
    pub fn slo_p99(mut self, us: f64) -> Self {
        self.slo_p99_us = Some(us);
        self
    }
}

/// Host-level event counters, exported as `fluidmem_host_events_total`.
#[derive(Debug, Default)]
struct HostCounters {
    rebalances: Counter,
    grants: Counter,
    shrinks: Counter,
    balloon_clamps: Counter,
    membership_events: Counter,
    /// Rounds in which any SLO-throttled VM was planned below the floor
    /// — must stay zero; the `slo_guarded` policy guarantees the
    /// minimum even while throttling.
    floor_misses: Counter,
}

impl HostCounters {
    fn register(&self, registry: &Registry) {
        for (event, counter) in [
            ("rebalance", &self.rebalances),
            ("grant", &self.grants),
            ("shrink", &self.shrinks),
            ("balloon_clamp", &self.balloon_clamps),
            ("membership_event", &self.membership_events),
            ("floor_miss", &self.floor_misses),
        ] {
            registry.adopt_counter(
                consts::HOST_EVENTS,
                &[(consts::LABEL_EVENT, event)],
                counter,
            );
        }
    }
}

/// One hosted VM: its backend, lease, balloon, and measurement state.
struct VmSlot {
    spec: VmSpec,
    pid: u64,
    partition: PartitionId,
    lease: String,
    vm: FluidMemMemory,
    region: Region,
    balloon: Balloon,
    /// Signals snapshot at the start of the current rebalance window.
    baseline: VmSignals,
    /// Latency of every measured access (hits are zero).
    access_lat: Sample,
    /// Latency of measured faults only.
    fault_lat: Sample,
    /// Fault latencies in the current rebalance window only (cleared
    /// every round): the arbiter's per-window p99 signal.
    window_fault_lat: Sample,
    /// Rebalance windows in which this VM ran over its SLO target.
    slo_violations: Counter,
    measured_ops: u64,
    capacity_gauge: Gauge,
    workload_rng: SimRng,
    /// Smooth weighted round-robin accumulator.
    wrr: i64,
}

/// At most this many partitions migrate concurrently; the rest of a
/// rebalance plan waits for slots, keeping the copier's dirty-page
/// backlog (and the target nodes' ingest load) bounded.
const MAX_CONCURRENT_MIGRATIONS: usize = 4;

/// Host-side state for a sharded store cluster (hosts built with
/// [`HostAgent::with_cluster`]).
struct ClusterRuntime {
    handle: ClusterHandle,
    dir: StoreDirectory,
    lease_ttl: SimDuration,
    /// Nodes mid-graceful-leave: off the ring, still serving until their
    /// partitions migrate away, then deregistered.
    draining: Vec<NodeId>,
    /// Nodes whose heartbeats the agent suppresses ("crashed"), so the
    /// next sweep expires their lease — the test/bench failure hook.
    silenced: Vec<NodeId>,
    /// Flip-ready partitions whose route publish hit a coord error;
    /// retried next tick.
    pending_flips: Vec<PartitionId>,
    /// Partitions whose migration was aborted because its *target* died;
    /// their restart counts as a retarget, not a fresh start.
    retargets: Vec<PartitionId>,
}

/// The multi-VM host agent. See the module docs.
pub struct HostAgent {
    config: HostConfig,
    store: SharedStore,
    coord: CoordCluster,
    directory: HostDirectory,
    members: Vec<VmLease>,
    slots: Vec<VmSlot>,
    telemetry: Telemetry,
    counters: HostCounters,
    clock: SimClock,
    rng: SimRng,
    next_pid: u64,
    ops_done: u64,
    measure_start: SimInstant,
    cluster: Option<ClusterRuntime>,
}

impl HostAgent {
    /// Stands up a host over `store`: wraps it for sharing, boots a
    /// 3-replica coordination cluster, initializes the partition table,
    /// and registers the host's membership directory.
    pub fn new(
        config: HostConfig,
        store: Box<dyn KeyValueStore>,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        let mut coord = CoordCluster::new(3, clock.clone(), rng.fork("coord"));
        PartitionTable::init(&mut coord).expect("fresh cluster initializes");
        let directory =
            HostDirectory::register(&mut coord, config.host_id).expect("fresh cluster registers");
        directory
            .watch_membership(&mut coord)
            .expect("fresh cluster watches");
        let telemetry = Telemetry::new(clock.clone());
        let counters = HostCounters::default();
        counters.register(telemetry.registry());
        let measure_start = clock.now();
        HostAgent {
            config,
            store: SharedStore::new(store),
            coord,
            directory,
            members: Vec::new(),
            slots: Vec::new(),
            telemetry,
            counters,
            clock,
            rng,
            next_pid: 1000,
            ops_done: 0,
            measure_start,
            cluster: None,
        }
    }

    /// Stands up a host over a sharded store cluster: the shared store is
    /// the cluster handle itself (every VM access routes through the
    /// ring), each current node gets a TTL lease in the coordination
    /// service's store directory, and the agent drives membership,
    /// migrations, and routing flips at `config.cluster_interval`.
    pub fn with_cluster(
        config: HostConfig,
        cluster: ClusterHandle,
        lease_ttl: SimDuration,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        let mut agent = HostAgent::new(config, Box::new(cluster.clone()), clock, rng);
        let dir = StoreDirectory::init(&mut agent.coord).expect("fresh cluster initializes");
        let deadline = agent.clock.now() + lease_ttl;
        for id in cluster.with(|c| c.node_ids()) {
            dir.register(&mut agent.coord, id, deadline)
                .expect("store lease registers on a healthy cluster");
        }
        dir.watch_nodes(&mut agent.coord)
            .expect("fresh cluster watches");
        agent.cluster = Some(ClusterRuntime {
            handle: cluster,
            dir,
            lease_ttl,
            draining: Vec::new(),
            silenced: Vec::new(),
            pending_flips: Vec::new(),
            retargets: Vec::new(),
        });
        agent
    }

    /// Adds a VM: allocates its partition through the replicated table,
    /// registers its lease, maps its working set, and re-splits initial
    /// capacities evenly across the fleet.
    pub fn add_vm(&mut self, spec: VmSpec) -> usize {
        assert!(
            self.slots.iter().all(|s| s.spec.name != spec.name),
            "VM names must be unique (RNG fork key, telemetry label)"
        );
        let pid = self.next_pid;
        self.next_pid += 1;
        let partition = PartitionTable::allocate(
            &mut self.coord,
            VmIdentity {
                pid,
                hypervisor: self.config.host_id,
            },
        )
        .expect("partition allocation on a healthy cluster");
        let lease = self
            .directory
            .register_vm(&mut self.coord, pid, partition)
            .expect("lease registration on a healthy cluster");

        let mut monitor_config = self.config.monitor.clone();
        monitor_config.lru_capacity = self
            .config
            .dram_pages
            .checked_div(self.slots.len() as u64 + 1)
            .unwrap_or(self.config.dram_pages)
            .max(1);
        let mut vm = FluidMemMemory::new(
            monitor_config,
            Box::new(self.store.handle()),
            partition,
            self.clock.clone(),
            self.rng.fork(&format!("vm-{}", spec.name)),
        );
        vm.attach_telemetry_labeled(&self.telemetry, &spec.name);
        let region = vm.map_region(spec.wss_pages, PageClass::Anonymous);
        let baseline = vm.signals();
        let capacity_gauge = Gauge::new();
        self.telemetry.registry().adopt_gauge(
            consts::HOST_VM_CAPACITY_PAGES,
            &[(consts::LABEL_VM, &spec.name)],
            &capacity_gauge,
        );
        let slo_violations = Counter::new();
        self.telemetry.registry().adopt_counter(
            consts::HOST_SLO_VIOLATIONS,
            &[(consts::LABEL_VM, &spec.name)],
            &slo_violations,
        );
        let workload_rng = self.rng.fork(&format!("workload-{}", spec.name));
        self.slots.push(VmSlot {
            spec,
            pid,
            partition,
            lease,
            vm,
            region,
            balloon: Balloon::new(),
            baseline,
            access_lat: Sample::new(),
            fault_lat: Sample::new(),
            window_fault_lat: Sample::new(),
            slo_violations,
            measured_ops: 0,
            capacity_gauge,
            workload_rng,
            wrr: 0,
        });
        self.split_evenly();
        self.refresh_membership();
        self.slots.len() - 1
    }

    /// Removes a VM: unregisters its region (dropping its pages from
    /// the shared store), deletes its lease, and releases its partition.
    pub fn remove_vm(&mut self, index: usize) {
        let mut slot = self.slots.remove(index);
        slot.vm.drain_writes();
        let region = slot.region;
        slot.vm.unregister_region(&region);
        self.directory
            .deregister_vm(&mut self.coord, &slot.lease)
            .expect("lease exists until deregistered");
        PartitionTable::release(&mut self.coord, slot.partition)
            .expect("partition held until released");
        self.refresh_membership();
        if !self.slots.is_empty() {
            self.split_evenly();
        }
    }

    /// Drives `ops` accesses across the fleet, rebalancing at the
    /// configured cadence.
    ///
    /// With the default `monitor.max_inflight = 1` the interleave is
    /// smooth weighted round-robin: a weight-4 VM issues 4/7 of the
    /// accesses in a 4:1:1:1 fleet, without bursts. When the monitor
    /// config pipelines (`max_inflight > 1`), the agent switches to a
    /// completion-ordered interleave on a deterministic [`EventQueue`]:
    /// each VM holds `weight` slots in the queue and re-enters at its
    /// access's completion instant, so the VM whose previous fault
    /// resolved earliest goes next — the schedule the paper's
    /// multi-threaded monitor produces, and still a pure function of the
    /// seed.
    pub fn run(&mut self, ops: u64) {
        assert!(!self.slots.is_empty(), "add VMs before running");
        if self.config.monitor.max_inflight > 1 {
            self.run_completion_ordered(ops);
            return;
        }
        let total_weight: i64 = self.slots.iter().map(|s| s.spec.weight as i64).sum();
        for _ in 0..ops {
            let mut best = 0;
            for i in 0..self.slots.len() {
                self.slots[i].wrr += self.slots[i].spec.weight as i64;
                if self.slots[i].wrr > self.slots[best].wrr {
                    best = i;
                }
            }
            self.slots[best].wrr -= total_weight;
            self.step(best);
            self.ops_done += 1;
            self.maybe_rebalance();
            self.maybe_cluster_tick();
        }
    }

    /// The pipelined interleave: VMs re-enter the ready queue at the
    /// completion instant of their previous access, FIFO among ties
    /// (queue order is `(instant, submission seq)`), so two runs with
    /// the same seed interleave identically.
    fn run_completion_ordered(&mut self, ops: u64) {
        let mut ready: EventQueue<usize> = EventQueue::new();
        let now = self.clock.now();
        for (i, slot) in self.slots.iter().enumerate() {
            for _ in 0..slot.spec.weight.max(1) {
                ready.push(now, i);
            }
        }
        for _ in 0..ops {
            let (ready_at, i) = ready.pop_next().expect("every VM holds a queue slot");
            // No-op if this VM's completion is already in the past
            // relative to work other VMs did meanwhile.
            self.clock.advance_to(ready_at);
            let t0 = self.clock.now();
            let latency = self.step(i);
            ready.push(t0 + latency, i);
            self.ops_done += 1;
            self.maybe_rebalance();
            self.maybe_cluster_tick();
        }
    }

    fn maybe_rebalance(&mut self) {
        if self.config.rebalance_interval > 0
            && self.ops_done.is_multiple_of(self.config.rebalance_interval)
        {
            self.rebalance_now();
        }
    }

    fn step(&mut self, i: usize) -> SimDuration {
        let slot = &mut self.slots[i];
        let page = slot.workload_rng.gen_index(slot.spec.wss_pages);
        let write = slot.workload_rng.gen_bool(slot.spec.write_fraction);
        let report = slot.vm.access(slot.region.page(page), write);
        slot.measured_ops += 1;
        slot.access_lat.record_duration(report.latency);
        if report.outcome != AccessOutcome::Hit {
            slot.fault_lat.record_duration(report.latency);
            slot.window_fault_lat.record_duration(report.latency);
        }
        report.latency
    }

    /// Runs one arbiter round immediately: collect windowed demands,
    /// plan, apply (shrinks before grows), roll the window baselines.
    pub fn rebalance_now(&mut self) {
        if self.slots.is_empty() {
            return;
        }
        let policy_label = self.config.policy.label();
        let n = self.slots.len();
        let span = self
            .telemetry
            .begin_with(consts::TRACK_HOST, "rebalance", || {
                vec![("policy", policy_label.to_string()), ("vms", n.to_string())]
            });
        self.counters.rebalances.inc();
        let demands: Vec<VmDemand> = self
            .slots
            .iter_mut()
            .map(|slot| {
                let now = slot.vm.signals();
                let window = now.window_since(&slot.baseline);
                VmDemand {
                    major_faults: window.major_faults,
                    thrash_refaults: window.thrash_refaults,
                    hit_ratio: window.hit_ratio(),
                    balloon_target: slot.balloon.target(),
                    current_pages: now.capacity_pages,
                    p99_fault_us: slot.window_fault_lat.percentile(0.99),
                    slo_p99_us: slot.spec.slo_p99_us,
                }
            })
            .collect();
        // Count SLO-violation windows per VM (pure bookkeeping, off the
        // virtual timeline) and reset the window samples.
        for (slot, demand) in self.slots.iter_mut().zip(&demands) {
            if demand
                .slo_p99_us
                .is_some_and(|slo| demand.p99_fault_us > slo)
            {
                slot.slo_violations.inc();
            }
            slot.window_fault_lat = Sample::new();
        }
        let plan = arbiter::plan(
            &ArbiterConfig {
                total_pages: self.config.dram_pages,
                min_pages: self.config.min_pages_per_vm,
                policy: self.config.policy,
            },
            &demands,
        );
        // The slo_guarded floor guarantee, audited every round: a
        // throttled VM planned below the minimum is a policy bug, and
        // the scaling bench gates on this staying zero.
        let floor = self
            .config
            .min_pages_per_vm
            .min(self.config.dram_pages / n as u64);
        for (i, &cap) in plan.capacities.iter().enumerate() {
            if plan.slo_throttled[i] && cap < floor {
                self.counters.floor_misses.inc();
            }
        }
        // Shrinks first: the freed pages cover the grows, so the host's
        // aggregate resident never exceeds the budget mid-apply.
        for pass in 0..2 {
            for (i, &target) in plan.capacities.iter().enumerate() {
                let current = self.slots[i].vm.local_capacity_pages();
                let apply = if pass == 0 {
                    target < current
                } else {
                    target > current
                };
                if apply {
                    self.slots[i]
                        .vm
                        .set_local_capacity(target)
                        .expect("FluidMem resizes freely");
                    if pass == 0 {
                        self.counters.shrinks.inc();
                    } else {
                        self.counters.grants.inc();
                    }
                }
            }
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if plan.balloon_clamped[i] {
                self.counters.balloon_clamps.inc();
            }
            // The compressed-tier pool quota follows the DRAM grant.
            Self::apply_tier_quota(&self.config, slot);
            slot.capacity_gauge
                .set(slot.vm.local_capacity_pages() as i64);
            slot.baseline = slot.vm.signals();
        }
        self.telemetry.end(span);
    }

    /// Announces an operator balloon target for a VM (or clears it with
    /// `None`); the arbiter clamps the VM's grant from the next round.
    pub fn set_balloon_target(&mut self, index: usize, target: Option<u64>) {
        match target {
            Some(pages) => self.slots[index].balloon.request(pages),
            None => self.slots[index].balloon.deflate(),
        }
    }

    /// Clears measurement state (latency samples, op counts) and starts
    /// a fresh measurement window — call after warm-up.
    pub fn reset_measurements(&mut self) {
        for slot in &mut self.slots {
            slot.access_lat = Sample::new();
            slot.fault_lat = Sample::new();
            slot.window_fault_lat = Sample::new();
            slot.measured_ops = 0;
            slot.baseline = slot.vm.signals();
        }
        self.measure_start = self.clock.now();
    }

    /// Flushes every VM's outstanding writes.
    pub fn drain(&mut self) {
        for slot in &mut self.slots {
            slot.vm.drain_writes();
        }
    }

    /// Swaps in a shared telemetry handle: re-registers host counters,
    /// every VM's labeled instruments, and the per-VM capacity gauges.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        self.counters.register(self.telemetry.registry());
        for slot in &mut self.slots {
            slot.vm
                .attach_telemetry_labeled(&self.telemetry, &slot.spec.name);
            self.telemetry.registry().adopt_gauge(
                consts::HOST_VM_CAPACITY_PAGES,
                &[(consts::LABEL_VM, &slot.spec.name)],
                &slot.capacity_gauge,
            );
        }
        if let Some(rt) = &self.cluster {
            rt.handle
                .with(|c| c.attach_telemetry(self.telemetry.clone()));
        }
    }

    fn split_evenly(&mut self) {
        let n = self.slots.len() as u64;
        let even = arbiter::plan(
            &ArbiterConfig {
                total_pages: self.config.dram_pages,
                min_pages: self.config.dram_pages / n.max(1),
                policy: ArbiterPolicy::StaticQuota,
            },
            &vec![VmDemand::default(); self.slots.len()],
        );
        for (i, &cap) in even.capacities.iter().enumerate() {
            self.slots[i]
                .vm
                .set_local_capacity(cap)
                .expect("FluidMem resizes freely");
            Self::apply_tier_quota(&self.config, &mut self.slots[i]);
            self.slots[i].capacity_gauge.set(cap as i64);
        }
    }

    /// Grants a VM its share of the host-wide compressed-tier budget,
    /// proportional to its current DRAM capacity grant. A no-op with the
    /// tier disabled.
    fn apply_tier_quota(config: &HostConfig, slot: &mut VmSlot) {
        if !config.monitor.tier.enabled {
            return;
        }
        let quota = (config.monitor.tier.max_bytes as u128
            * u128::from(slot.vm.local_capacity_pages())
            / u128::from(config.dram_pages.max(1))) as usize;
        slot.vm.set_tier_budget(quota.max(1));
    }

    fn refresh_membership(&mut self) {
        let events = self.directory.membership_events(&mut self.coord);
        self.counters.membership_events.add(events.len() as u64);
        self.members = self.directory.live_vms(&mut self.coord);
        self.directory
            .watch_membership(&mut self.coord)
            .expect("re-arming watches on a healthy cluster");
    }

    // ----- store cluster ----------------------------------------------

    /// Adds a store node to the cluster: places it on the ring, leases it
    /// in the coordination service, and immediately plans migrations so
    /// the partitions whose ring home moved start draining toward it.
    ///
    /// # Panics
    ///
    /// Panics if the host was not built with
    /// [`with_cluster`](HostAgent::with_cluster).
    pub fn add_store_node(&mut self, id: NodeId, store: Box<dyn KeyValueStore>) {
        let rt = self
            .cluster
            .as_mut()
            .expect("host was not built with_cluster");
        rt.handle.with(|c| c.add_node(id, store));
        let deadline = self.clock.now() + rt.lease_ttl;
        rt.dir
            .register(&mut self.coord, id, deadline)
            .expect("store lease registers on a healthy cluster");
        // Arm the new lease's watch so its eventual delete (expiry or
        // deregister) is observed; re-arming existing paths is idempotent.
        rt.dir
            .watch_nodes(&mut self.coord)
            .expect("re-arming watches on a healthy cluster");
        self.counters.membership_events.inc();
        self.cluster_tick_now();
    }

    /// Begins a graceful leave: the node comes off the ring so nothing
    /// new homes at it, its partitions migrate away at the maintenance
    /// cadence, and once it holds nothing it is deregistered (firing the
    /// `Deleted` watch that completes the leave).
    pub fn remove_store_node(&mut self, id: NodeId) {
        let rt = self
            .cluster
            .as_mut()
            .expect("host was not built with_cluster");
        if rt.handle.with(|c| c.retire_from_ring(id)) && !rt.draining.contains(&id) {
            rt.draining.push(id);
        }
        self.counters.membership_events.inc();
        self.cluster_tick_now();
    }

    /// Simulates a store-node crash: the agent stops heartbeating the
    /// node and marks its lease due now, so the next sweep expires it
    /// with a proposed delete. The resulting `Deleted` watch event — not
    /// this call — is what fails the node and aborts or retargets any
    /// migration touching it, making expiry-driven recovery an ordered,
    /// replayable event.
    pub fn expire_store_node(&mut self, id: NodeId) {
        let now = self.clock.now();
        let rt = self
            .cluster
            .as_mut()
            .expect("host was not built with_cluster");
        if !rt.silenced.contains(&id) {
            rt.silenced.push(id);
        }
        let _ = rt.dir.renew(&mut self.coord, id, now);
        // The renew's SetData consumed the one-shot watch on this lease
        // (as DataChanged); re-arm it so the sweep's delete is observed.
        let _ = self
            .coord
            .watch(rt.dir.session(), &StoreDirectory::node_path(id));
    }

    /// The arbiter-style drain policy: migrate one partition off the
    /// most-loaded node to the least-loaded other node. Returns
    /// `(source, partition, target)` if a migration started.
    pub fn drain_hottest_node(&mut self) -> Option<(NodeId, PartitionId, NodeId)> {
        let rt = self.cluster.as_ref()?;
        let loads = rt.handle.with(|c| c.node_loads());
        let (hot, _) = loads.iter().copied().max_by_key(|&(id, load)| (load, id))?;
        let (cold, _) = loads
            .iter()
            .copied()
            .filter(|&(id, _)| id != hot)
            .min_by_key(|&(id, load)| (load, id))?;
        let partition = rt
            .handle
            .with(|c| c.partitions_of(hot))
            .into_iter()
            .next()?;
        rt.handle
            .with(|c| c.start_migration(partition, cold))
            .then_some((hot, partition, cold))
    }

    fn maybe_cluster_tick(&mut self) {
        if self.cluster.is_some()
            && self.config.cluster_interval > 0
            && self.ops_done.is_multiple_of(self.config.cluster_interval)
        {
            self.cluster_tick_now();
        }
    }

    /// Runs one cluster-maintenance round immediately: heartbeat live
    /// leases and sweep expired ones, apply membership watch events,
    /// advance the migration copier, publish flip-ready routes through
    /// the coordination service, plan new migrations toward the ring,
    /// and complete graceful leaves.
    pub fn cluster_tick_now(&mut self) {
        let Some(mut rt) = self.cluster.take() else {
            return;
        };
        let now = self.clock.now();

        // 1. Heartbeats, then the sweep. Expiry is a *proposed delete*
        //    per overdue lease; the watches it fires are handled below.
        for id in rt.handle.with(|c| c.node_ids()) {
            if rt.handle.with(|c| c.is_alive(id)) && !rt.silenced.contains(&id) {
                let _ = rt.dir.renew(&mut self.coord, id, now + rt.lease_ttl);
            }
        }
        let _ = rt.dir.expire_due(&mut self.coord, now);

        // 2. Watch events drive failure handling (draining is free; the
        //    re-arm charges one round of watch registrations).
        let events = rt.dir.events(&mut self.coord);
        for event in &events {
            if event.kind != WatchKind::Deleted {
                continue;
            }
            let Some(id) = StoreDirectory::parse_node_path(&event.path) else {
                continue;
            };
            self.counters.membership_events.inc();
            let was_draining = rt.draining.iter().position(|&d| d == id);
            if let Some(pos) = was_draining {
                rt.draining.remove(pos);
            }
            let orphaned = rt.handle.with(|c| c.fail_node(id));
            if was_draining.is_none() {
                rt.handle.with(|c| c.counters().node_expirations.inc());
            }
            // Migrations that were copying *to* the dead node restart
            // toward the new ring home in step 5, counted as retargets.
            for partition in orphaned {
                if !rt.retargets.contains(&partition) {
                    rt.retargets.push(partition);
                }
            }
        }
        if !events.is_empty() {
            rt.dir
                .watch_nodes(&mut self.coord)
                .expect("re-arming watches on a healthy cluster");
        }

        // 3. Advance the copier; publish every flip through the coord
        //    routes table *before* committing it — the committed route
        //    write is the migration's linearization point.
        let flips = rt.handle.with(|c| c.tick(now));
        for partition in flips {
            if !rt.pending_flips.contains(&partition) {
                rt.pending_flips.push(partition);
            }
        }
        let pending = std::mem::take(&mut rt.pending_flips);
        for partition in pending {
            // A write since the copier finished demotes the migration
            // back to copying; tick() re-delivers it when drained again.
            if !rt.handle.with(|c| c.is_flip_ready(partition)) {
                continue;
            }
            let Some((_, target)) = rt.handle.with(|c| c.migration_of(partition)) else {
                continue;
            };
            match PartitionTable::set_route(&mut self.coord, partition, target) {
                Ok(()) => {
                    rt.handle.with(|c| c.complete_flip(partition));
                }
                Err(_) => rt.pending_flips.push(partition),
            }
        }

        // 4. Graceful leaves complete once nothing is assigned to or
        //    migrating through the node.
        for id in rt.draining.clone() {
            let drained = rt
                .handle
                .with(|c| c.partitions_of(id).is_empty() && !c.migrations_touch(id));
            if drained {
                let _ = rt.dir.deregister(&mut self.coord, id);
            }
        }

        // 5. Plan migrations toward the current ring, bounded by the
        //    concurrency cap; restarts of target-died migrations count
        //    as retargets.
        let plan = rt.handle.with(|c| c.rebalance_plan());
        for (partition, target) in plan {
            if rt.handle.with(|c| c.migrations_in_flight()) >= MAX_CONCURRENT_MIGRATIONS {
                break;
            }
            if rt.handle.with(|c| c.start_migration(partition, target)) {
                if let Some(pos) = rt.retargets.iter().position(|&p| p == partition) {
                    rt.retargets.remove(pos);
                    rt.handle.with(|c| c.counters().migrations_retargeted.inc());
                }
            }
        }

        self.cluster = Some(rt);
    }

    /// The cluster handle, for hosts built with
    /// [`with_cluster`](HostAgent::with_cluster).
    pub fn cluster_handle(&self) -> Option<ClusterHandle> {
        self.cluster.as_ref().map(|rt| rt.handle.clone())
    }

    /// Audits the cluster's shadow accounting (see
    /// [`ClusterStore::audit`](fluidmem_kv::ClusterStore::audit)).
    /// `None` on hosts without a cluster.
    pub fn audit_cluster(&self) -> Option<AuditReport> {
        self.cluster
            .as_ref()
            .map(|rt| rt.handle.with(|c| c.audit()))
    }

    /// Store-node ids with live leases, ascending. Charges coordination
    /// RTTs; intended for assertions and bench reporting, not hot paths.
    pub fn live_store_nodes(&mut self) -> Vec<NodeId> {
        match &self.cluster {
            Some(rt) => {
                let dir = &rt.dir;
                dir.live(&mut self.coord)
            }
            None => Vec::new(),
        }
    }

    /// Number of hosted VMs.
    pub fn vm_count(&self) -> usize {
        self.slots.len()
    }

    /// A VM's name.
    pub fn vm_name(&self, index: usize) -> &str {
        &self.slots[index].spec.name
    }

    /// A VM's PID (as leased in the membership directory).
    pub fn vm_pid(&self, index: usize) -> u64 {
        self.slots[index].pid
    }

    /// A VM's store partition.
    pub fn vm_partition(&self, index: usize) -> PartitionId {
        self.slots[index].partition
    }

    /// A VM's current capacity grant, in pages.
    pub fn vm_capacity(&self, index: usize) -> u64 {
        self.slots[index].vm.local_capacity_pages()
    }

    /// A VM's cumulative signals snapshot.
    pub fn vm_signals(&self, index: usize) -> VmSignals {
        self.slots[index].vm.signals()
    }

    /// Measured ops for a VM since the last reset.
    pub fn vm_ops(&self, index: usize) -> u64 {
        self.slots[index].measured_ops
    }

    /// Measured fault count for a VM since the last reset.
    pub fn vm_faults(&self, index: usize) -> u64 {
        self.slots[index].fault_lat.count() as u64
    }

    /// Pages a VM's monitor has ever seen (its tracked-page footprint).
    pub fn vm_seen_pages(&self, index: usize) -> usize {
        self.slots[index].vm.monitor().seen_pages()
    }

    /// Rebalance windows in which a VM with an SLO target ran over it,
    /// summed across the fleet.
    pub fn slo_violations(&self) -> u64 {
        self.slots.iter().map(|s| s.slo_violations.get()).sum()
    }

    /// Rounds in which an SLO-throttled VM was planned below the floor
    /// guarantee. Zero by construction; the scaling bench gates on it.
    pub fn floor_misses(&self) -> u64 {
        self.counters.floor_misses.get()
    }

    /// Percentile of a VM's measured *fault* latencies, in µs
    /// (`0.0` if the VM faulted zero times in the window).
    pub fn vm_fault_percentile(&mut self, index: usize, p: f64) -> f64 {
        self.slots[index].fault_lat.percentile(p)
    }

    /// Percentile of a VM's measured *access* latencies (hits are
    /// zero), in µs.
    pub fn vm_access_percentile(&mut self, index: usize, p: f64) -> f64 {
        self.slots[index].access_lat.percentile(p)
    }

    /// Percentile over every VM's measured access latencies, in µs —
    /// the host-wide tail a tenant-blind arbiter inflates.
    pub fn aggregate_access_percentile(&mut self, p: f64) -> f64 {
        let mut merged = Sample::new();
        for slot in &self.slots {
            for &v in slot.access_lat.values() {
                merged.record(v);
            }
        }
        merged.percentile(p)
    }

    /// Percentile over every VM's measured fault latencies, in µs.
    pub fn aggregate_fault_percentile(&mut self, p: f64) -> f64 {
        let mut merged = Sample::new();
        for slot in &self.slots {
            for &v in slot.fault_lat.values() {
                merged.record(v);
            }
        }
        merged.percentile(p)
    }

    /// Total measured ops since the last reset.
    pub fn total_measured_ops(&self) -> u64 {
        self.slots.iter().map(|s| s.measured_ops).sum()
    }

    /// Simulated time elapsed in the current measurement window.
    pub fn measurement_window(&self) -> SimDuration {
        self.clock.now() - self.measure_start
    }

    /// The shared store's aggregate stats (all VMs combined).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Another handle to the shared store.
    pub fn store(&self) -> SharedStore {
        self.store.handle()
    }

    /// The live membership directory contents, as of the last refresh.
    pub fn members(&self) -> &[VmLease] {
        &self.members
    }

    /// The host's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Host ops driven so far (warm-up included).
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }
}

impl std::fmt::Debug for HostAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostAgent")
            .field("host", &self.config.host_id)
            .field("vms", &self.slots.len())
            .field("policy", &self.config.policy)
            .field("dram_pages", &self.config.dram_pages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_kv::{DramStore, RamCloudStore};

    fn host(config: HostConfig, seed: u64) -> HostAgent {
        let clock = SimClock::new();
        let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(seed));
        HostAgent::new(
            config,
            Box::new(store),
            clock,
            SimRng::seed_from_u64(seed + 1),
        )
    }

    fn skewed_host(policy: ArbiterPolicy) -> HostAgent {
        let clock = SimClock::new();
        let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(11));
        let config = HostConfig::new(512)
            .policy(policy)
            .min_pages(48)
            .rebalance_interval(256);
        let mut agent = HostAgent::new(config, Box::new(store), clock, SimRng::seed_from_u64(12));
        agent.add_vm(VmSpec::new("hot", 320).weight(4));
        agent.add_vm(VmSpec::new("cold-a", 40));
        agent.add_vm(VmSpec::new("cold-b", 40));
        agent.add_vm(VmSpec::new("cold-c", 40));
        agent
    }

    #[test]
    fn registration_flows_through_coord() {
        let mut agent = host(HostConfig::new(256), 1);
        agent.add_vm(VmSpec::new("a", 64));
        agent.add_vm(VmSpec::new("b", 64));
        agent.add_vm(VmSpec::new("c", 64));
        assert_eq!(agent.vm_count(), 3);
        assert_eq!(agent.members().len(), 3);
        // Partitions are distinct and the leases carry them.
        let partitions: Vec<PartitionId> = (0..3).map(|i| agent.vm_partition(i)).collect();
        assert_eq!(partitions.len(), 3);
        assert!(partitions[0] != partitions[1] && partitions[1] != partitions[2]);
        for (i, lease) in agent.members().to_vec().iter().enumerate() {
            assert_eq!(lease.pid, agent.vm_pid(i));
            assert_eq!(lease.partition, agent.vm_partition(i));
        }
        // Registration fired membership watches.
        assert!(agent.counters.membership_events.get() > 0);

        agent.run(600);
        agent.remove_vm(1);
        assert_eq!(agent.vm_count(), 2);
        assert_eq!(agent.members().len(), 2);
        assert_eq!(agent.vm_name(1), "c");
    }

    #[test]
    fn capacities_stay_within_the_host_budget() {
        let mut agent = host(HostConfig::new(200).min_pages(10).rebalance_interval(64), 3);
        agent.add_vm(VmSpec::new("x", 150));
        agent.add_vm(VmSpec::new("y", 150));
        agent.add_vm(VmSpec::new("z", 150));
        agent.run(3000);
        let granted: u64 = (0..3).map(|i| agent.vm_capacity(i)).sum();
        assert!(granted <= 200, "over-committed: {granted} > 200");
        let resident: u64 = (0..3).map(|i| agent.vm_signals(i).resident_pages).sum();
        assert!(resident <= 200, "resident {resident} exceeds host DRAM");
    }

    #[test]
    fn proportional_beats_static_on_a_skewed_fleet() {
        // The acceptance scenario: one hot VM (wss 320, weight 4) and
        // three cold ones on 512 host pages. Static quota grants the hot
        // VM 128 pages — it thrashes. The proportional arbiter routes
        // the idle VMs' surplus to it, so its working set fits and the
        // host-wide access tail collapses.
        let mut stat = skewed_host(ArbiterPolicy::StaticQuota);
        stat.run(8_000);
        stat.reset_measurements();
        stat.run(16_000);
        let static_p99 = stat.aggregate_access_percentile(0.99);

        let mut prop = skewed_host(ArbiterPolicy::FaultRateProportional);
        prop.run(8_000);
        prop.reset_measurements();
        prop.run(16_000);
        let prop_p99 = prop.aggregate_access_percentile(0.99);

        assert!(
            prop_p99 < static_p99,
            "proportional p99 {prop_p99}µs must beat static p99 {static_p99}µs"
        );
        // The hot VM's grant actually moved.
        assert!(prop.vm_capacity(0) > stat.vm_capacity(0));
        // And the guarantee held for the cold VMs.
        for i in 1..4 {
            assert!(prop.vm_capacity(i) >= 48);
        }
    }

    #[test]
    fn work_stealing_also_relieves_the_hot_vm() {
        let mut agent = skewed_host(ArbiterPolicy::MinGuaranteeWorkStealing);
        agent.run(12_000);
        assert!(
            agent.vm_capacity(0) > 128,
            "stealing should have grown the hot VM past its even share, got {}",
            agent.vm_capacity(0)
        );
    }

    #[test]
    fn slo_guarded_fleet_is_deterministic_and_never_starves_a_donor() {
        // An over-committed fleet under slo_guarded, every other VM
        // carrying a tight SLO: violation windows must fire, donors
        // must never be throttled below the floor, and two identically
        // seeded runs must agree bit for bit.
        let build = || {
            let mut agent = host(
                HostConfig::new(256)
                    .policy(ArbiterPolicy::SloGuarded)
                    .min_pages(16)
                    .rebalance_interval(128),
                7,
            );
            for i in 0..8 {
                let spec = VmSpec::new(format!("vm{i}"), 64);
                let spec = if i % 2 == 0 { spec.slo_p99(20.0) } else { spec };
                agent.add_vm(spec);
            }
            agent.run(8_000);
            agent.drain();
            agent
        };
        let a = build();
        let b = build();
        assert_eq!(a.clock().now(), b.clock().now(), "virtual time diverged");
        assert_eq!(a.slo_violations(), b.slo_violations());
        for i in 0..8 {
            assert_eq!(a.vm_signals(i), b.vm_signals(i), "vm{i} signals diverged");
            assert_eq!(a.vm_capacity(i), b.vm_capacity(i), "vm{i} grant diverged");
        }
        assert!(
            a.slo_violations() > 0,
            "a 20us target on an over-committed fleet must record violation windows"
        );
        assert_eq!(a.floor_misses(), 0, "no donor may drop below the floor");
        for i in 0..8 {
            assert!(
                a.vm_capacity(i) >= 16,
                "vm{i} granted {} pages, below the 16-page floor",
                a.vm_capacity(i)
            );
        }
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        // Eight VMs whose aggregate WSS is 2x host DRAM — the scaling
        // bench's stress point, shrunk for a unit test.
        let build = || {
            let mut agent = host(
                HostConfig::new(256).min_pages(8).rebalance_interval(128),
                42,
            );
            for i in 0..8 {
                agent.add_vm(VmSpec::new(format!("vm{i}"), 64));
            }
            agent.run(4_000);
            agent.drain();
            agent
        };
        let mut a = build();
        let mut b = build();
        assert_eq!(a.clock().now(), b.clock().now(), "virtual time diverged");
        for i in 0..8 {
            assert_eq!(a.vm_signals(i), b.vm_signals(i), "vm{i} signals diverged");
            assert_eq!(
                a.vm_fault_percentile(i, 0.99).to_bits(),
                b.vm_fault_percentile(i, 0.99).to_bits(),
                "vm{i} p99 diverged"
            );
        }
        assert_eq!(a.store_stats().puts, b.store_stats().puts);
        assert_eq!(a.store_stats().gets, b.store_stats().gets);
        assert_eq!(
            a.aggregate_access_percentile(0.999).to_bits(),
            b.aggregate_access_percentile(0.999).to_bits()
        );
    }

    #[test]
    fn background_reclaim_fleet_is_deterministic_and_stays_in_budget() {
        // An over-committed fleet with the kswapd-style reclaimer on:
        // arbiter retargets route shrinks through the background
        // evictor, the run must stay a pure function of the seed, and
        // the host budget must still hold.
        let build = || {
            let clock = SimClock::new();
            let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(31));
            let config = HostConfig::new(256)
                .min_pages(16)
                .rebalance_interval(128)
                .monitor(MonitorConfig::new(256).inflight(4))
                .reclaim(fluidmem_core::ReclaimConfig::kswapd());
            let mut agent =
                HostAgent::new(config, Box::new(store), clock, SimRng::seed_from_u64(32));
            agent.add_vm(VmSpec::new("hot", 200).weight(3));
            agent.add_vm(VmSpec::new("cold", 120));
            agent.run(6_000);
            agent.drain();
            agent
        };
        let a = build();
        let b = build();
        assert_eq!(a.clock().now(), b.clock().now(), "virtual time diverged");
        let mut background = 0;
        for i in 0..2 {
            let signals = a.vm_signals(i);
            assert_eq!(signals, b.vm_signals(i), "vm{i} signals diverged");
            background += signals.background_reclaims;
        }
        assert!(
            background > 0,
            "the fleet thrashes; the background evictor must have run"
        );
        let granted: u64 = (0..2).map(|i| a.vm_capacity(i)).sum();
        assert!(granted <= 256, "over-committed: {granted} > 256");
        let resident: u64 = (0..2).map(|i| a.vm_signals(i).resident_pages).sum();
        assert!(resident <= 256, "resident {resident} exceeds host DRAM");
    }

    #[test]
    fn completion_ordered_interleave_is_deterministic() {
        // A pipelining monitor config flips the host to the
        // completion-ordered interleave; the schedule must still be a
        // pure function of the seed, and every VM must make progress.
        let build = || {
            let clock = SimClock::new();
            let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(21));
            let config = HostConfig::new(256)
                .min_pages(16)
                .rebalance_interval(128)
                .monitor(MonitorConfig::new(256).inflight(4));
            let mut agent =
                HostAgent::new(config, Box::new(store), clock, SimRng::seed_from_u64(22));
            agent.add_vm(VmSpec::new("hot", 160).weight(4));
            agent.add_vm(VmSpec::new("cold", 40));
            agent.run(4_000);
            agent.drain();
            agent
        };
        let a = build();
        let b = build();
        assert_eq!(a.clock().now(), b.clock().now(), "virtual time diverged");
        for i in 0..2 {
            assert_eq!(a.vm_signals(i), b.vm_signals(i), "vm{i} signals diverged");
        }
        assert_eq!(a.store_stats().gets, b.store_stats().gets);
        // Both VMs ran, with the heavier VM issuing the majority.
        assert!(a.vm_ops(0) > a.vm_ops(1));
        assert!(a.vm_ops(1) > 0);
        assert_eq!(a.vm_ops(0) + a.vm_ops(1), 4_000);
    }

    #[test]
    fn balloon_target_clamps_the_grant() {
        let mut agent = host(HostConfig::new(256).min_pages(8).rebalance_interval(0), 7);
        agent.add_vm(VmSpec::new("a", 100));
        agent.add_vm(VmSpec::new("b", 100));
        assert_eq!(agent.vm_capacity(0), 128);
        agent.run(1000);
        agent.set_balloon_target(0, Some(40));
        agent.rebalance_now();
        assert!(
            agent.vm_capacity(0) <= 40,
            "balloon ignored: {}",
            agent.vm_capacity(0)
        );
        assert!(agent.counters.balloon_clamps.get() >= 1);
        // The freed pages went to the other VM.
        assert!(agent.vm_capacity(1) > 128);
        // Deflating releases the clamp at the next round.
        agent.set_balloon_target(0, None);
        agent.run(2000);
        agent.rebalance_now();
        assert!(agent.vm_capacity(0) > 40);
    }

    fn clustered_host(seed: u64, nodes: u32) -> HostAgent {
        let clock = SimClock::new();
        let mut cluster = fluidmem_kv::ClusterStore::new(
            clock.clone(),
            SimRng::seed_from_u64(seed ^ 0xC10C),
            fluidmem_kv::TransportModel::infiniband_verbs(),
            64,
            32,
        );
        for id in 0..nodes {
            cluster.add_node(id, Box::new(node_store(seed, id, &clock)));
        }
        let config = HostConfig::new(128)
            .min_pages(16)
            .rebalance_interval(0)
            .cluster_interval(64);
        HostAgent::with_cluster(
            config,
            fluidmem_kv::ClusterHandle::new(cluster),
            SimDuration::from_micros(1_000_000),
            clock,
            SimRng::seed_from_u64(seed + 100),
        )
    }

    fn node_store(seed: u64, id: NodeId, clock: &SimClock) -> DramStore {
        DramStore::new(
            1 << 28,
            clock.clone(),
            SimRng::seed_from_u64(seed * 1000 + u64::from(id)),
        )
    }

    /// Ticks until the copier settles; heartbeat RTTs advance the shared
    /// clock, so future activations become due.
    fn settle(agent: &mut HostAgent) {
        for _ in 0..200 {
            agent.cluster_tick_now();
            let busy = agent
                .cluster_handle()
                .unwrap()
                .with(|c| c.migrations_in_flight());
            if busy == 0 {
                return;
            }
        }
        panic!("cluster never settled");
    }

    #[test]
    fn store_node_join_migrates_partitions_over() {
        let mut agent = clustered_host(5, 1);
        agent.add_vm(VmSpec::new("a", 96));
        agent.add_vm(VmSpec::new("b", 96));
        agent.run(2_000);
        agent.drain();
        let handle = agent.cluster_handle().unwrap();
        assert!(handle.with(|c| c.node_len(0)) > 0, "node 0 must hold pages");

        let clock = agent.clock().clone();
        agent.add_store_node(1, Box::new(node_store(5, 1, &clock)));
        agent.run(2_000);
        agent.drain();
        settle(&mut agent);

        assert!(
            handle.with(|c| !c.partitions_of(1).is_empty()),
            "some partition must have flipped to the new node"
        );
        assert!(handle.with(|c| c.node_len(1)) > 0);
        assert!(handle.with(|c| c.counters().migrations_flipped.get()) > 0);
        let report = agent.audit_cluster().unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(agent.live_store_nodes(), vec![0, 1]);
    }

    #[test]
    fn graceful_leave_drains_then_deregisters() {
        let mut agent = clustered_host(7, 2);
        agent.add_vm(VmSpec::new("a", 96));
        agent.add_vm(VmSpec::new("b", 96));
        agent.run(2_000);
        agent.drain();
        let handle = agent.cluster_handle().unwrap();

        agent.remove_store_node(1);
        agent.run(2_000);
        agent.drain();
        settle(&mut agent);
        // One more round so the deregister's Deleted watch is consumed.
        agent.cluster_tick_now();

        assert!(handle.with(|c| c.partitions_of(1).is_empty()));
        assert_eq!(
            handle.with(|c| c.node_len(1)),
            0,
            "source dropped after flip"
        );
        assert_eq!(agent.live_store_nodes(), vec![0]);
        let report = agent.audit_cluster().unwrap();
        assert!(report.is_clean(), "{report:?}");
        // The leave never counted as an expiry.
        assert_eq!(handle.with(|c| c.counters().node_expirations.get()), 0);
    }

    #[test]
    fn lease_expiry_mid_migration_is_deterministic() {
        // A node joins, migrations start streaming toward it, and then
        // its lease silently lapses. The sweep's proposed delete fires
        // the Deleted watch; the handler fails the node and aborts the
        // in-flight copies — at the same virtual instant every run.
        let build = || {
            let mut agent = clustered_host(9, 2);
            agent.add_vm(VmSpec::new("a", 96));
            agent.add_vm(VmSpec::new("b", 96));
            agent.run(2_000);
            let clock = agent.clock().clone();
            agent.add_store_node(2, Box::new(node_store(9, 2, &clock)));
            let handle = agent.cluster_handle().unwrap();
            assert!(
                handle.with(|c| c.migrations_in_flight()) > 0,
                "the join must start migrations toward node 2"
            );
            agent.expire_store_node(2);
            agent.run(2_000);
            agent.drain();
            settle(&mut agent);
            agent
        };
        let a = build();
        let b = build();
        let handle = a.cluster_handle().unwrap();
        assert_eq!(handle.with(|c| c.counters().node_expirations.get()), 1);
        assert!(handle.with(|c| c.counters().migrations_aborted.get()) > 0);
        assert!(!handle.with(|c| c.is_alive(2)));
        let report = a.audit_cluster().unwrap();
        assert!(report.is_clean(), "{report:?}");

        assert_eq!(a.clock().now(), b.clock().now(), "virtual time diverged");
        let snapshot = |agent: &HostAgent| {
            agent.cluster_handle().unwrap().with(|c| {
                (
                    c.counters().migrations_started.get(),
                    c.counters().migrations_aborted.get(),
                    c.counters().migrations_flipped.get(),
                    c.counters().pages_copied.get(),
                    c.counters().pages_recopied.get(),
                )
            })
        };
        assert_eq!(snapshot(&a), snapshot(&b), "cluster counters diverged");
        assert_eq!(a.store_stats(), b.store_stats());
    }

    #[test]
    fn cluster_free_hosts_are_unchanged_by_the_wiring() {
        // The Option gate: a host built the classic way must draw
        // exactly the same clock and RNG schedule as before the cluster
        // layer existed — checked by the bit-identity test above, and
        // here by asserting the maintenance path is truly inert.
        let mut agent = host(HostConfig::new(256), 1);
        agent.add_vm(VmSpec::new("a", 64));
        let before = agent.clock().now();
        agent.cluster_tick_now();
        assert_eq!(agent.clock().now(), before, "tick must be a no-op");
        assert!(agent.cluster_handle().is_none());
        assert!(agent.audit_cluster().is_none());
        assert!(agent.live_store_nodes().is_empty());
    }

    #[test]
    fn telemetry_exports_host_track_and_per_vm_series() {
        let clock = SimClock::new();
        let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(5));
        let mut agent = HostAgent::new(
            HostConfig::new(128).rebalance_interval(256),
            Box::new(store),
            clock.clone(),
            SimRng::seed_from_u64(6),
        );
        let telemetry = Telemetry::new(clock);
        telemetry.enable_spans();
        agent.attach_telemetry(&telemetry);
        agent.add_vm(VmSpec::new("alpha", 96));
        agent.add_vm(VmSpec::new("beta", 96));
        agent.run(2_000);
        agent.drain();

        let prom = telemetry.export_prometheus();
        assert!(prom.contains("fluidmem_host_events_total"), "{prom}");
        assert!(
            prom.contains("fluidmem_host_vm_capacity_pages{vm=\"alpha\"}"),
            "{prom}"
        );
        assert!(prom.contains("vm=\"beta\""), "{prom}");
        // The monitors' labeled series landed in the same registry.
        assert!(
            prom.contains("fluidmem_monitor_events_total{event=\"fault\",vm=\"alpha\"}")
                || prom.contains("vm=\"alpha\",event=\"fault\""),
            "per-VM monitor series missing: {prom}"
        );
        let trace = telemetry.export_chrome_trace();
        assert!(trace.contains("rebalance"), "{trace}");
        assert!(trace.contains("host"), "{trace}");
    }
}
