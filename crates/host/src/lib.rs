//! Multi-VM hosting: N FluidMem monitors over one shared store, under a
//! DRAM arbiter.
//!
//! The paper's §IV designs for this — 12-bit partitions exist so that
//! "multiple VMs [can share] the same key-value store", with uniqueness
//! guaranteed by the ZooKeeper-backed table — but the evaluation runs
//! one VM per host. This crate packages the multi-tenant deployment:
//!
//! * [`HostAgent`] — runs N VMs' monitors against one
//!   [`SharedStore`](fluidmem_kv::SharedStore), registers each VM's
//!   partition and lease through the coordination service, and
//!   interleaves their fault streams deterministically on the shared
//!   clock;
//! * [`plan`] — the pure, integer-arithmetic DRAM arbiter that re-splits
//!   host DRAM between the VMs' LRU buffers from windowed fault rates,
//!   hit ratios, and operator balloon targets, under one of three
//!   [`ArbiterPolicy`]s.
//!
//! The division of labor: the arbiter is a *planning function* (no
//! clock, no RNG, exhaustively unit-testable); the agent is the *actor*
//! that measures demand, calls the planner, and applies grants through
//! `Monitor::resize` — FluidMem's defining no-guest-cooperation knob
//! (§III, §VI-E).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod arbiter;

pub use agent::{HostAgent, HostConfig, VmSpec};
pub use arbiter::{plan, ArbiterConfig, ArbiterPlan, ArbiterPolicy, VmDemand};
