//! The DRAM arbiter: how host DRAM is split between N VMs' LRU buffers.
//!
//! The arbiter is a *pure, deterministic* planning function: given the
//! host's total page budget and one [`VmDemand`] per VM (fault counts
//! over the last rebalance window, hit ratio, balloon target, current
//! grant), [`plan`] returns the next per-VM capacities. All arithmetic
//! is integer (largest-remainder apportionment), no randomness, no
//! clock — so a host run is reproducible bit-for-bit and the planner
//! can be unit-tested exhaustively.
//!
//! Five policies (the knob the paper's §VI-E "flexibility" experiments
//! imply but never build):
//!
//! * [`ArbiterPolicy::StaticQuota`] — the baseline: an even, demand-blind
//!   split. What a hot VM thrashes against.
//! * [`ArbiterPolicy::FaultRateProportional`] — every VM keeps a minimum
//!   guarantee; the remaining pool is apportioned proportionally to each
//!   VM's major faults in the window (the misses capacity can buy down).
//! * [`ArbiterPolicy::MinGuaranteeWorkStealing`] — incremental: VMs
//!   faulting below the fleet mean donate half of their surplus above
//!   the guarantee; the pool is re-granted to above-mean VMs. Converges
//!   toward the proportional split without large step changes.
//! * [`ArbiterPolicy::RefaultProportional`] — like the proportional
//!   policy, but weighted by window *thrash refaults* (refaults whose
//!   distance fell inside the VM's working-set estimate) instead of raw
//!   major faults. Cold misses and streaming scans fault heavily but
//!   refault never — raw fault counts overpay them; thrash refaults are
//!   exactly the faults more DRAM would have avoided.
//! * [`ArbiterPolicy::SloGuarded`] — production arbitration for mixed
//!   fleets: VMs carry optional p99 fault-latency targets
//!   ([`VmDemand::slo_p99_us`]). When a protected VM's observed window
//!   p99 ([`VmDemand::p99_fault_us`]) exceeds its target, every
//!   non-violating VM — the noisy neighbors — is throttled
//!   balloon-style, donating half its surplus above the floor, and the
//!   freed pages go to the violators proportionally to how far over
//!   target they are. The floor (the minimum guarantee) is never
//!   breached, so throttled VMs always keep making progress.
//!
//! Balloon targets are authoritative clamps in every policy: if the
//! operator asked a VM to shrink to `B` pages, the arbiter never grants
//! it more than `B`, and re-offers the freed pages to the other VMs.

/// How the arbiter splits host DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// Demand-blind even split of the total budget.
    StaticQuota,
    /// Minimum guarantee plus a pool apportioned by window major faults.
    FaultRateProportional,
    /// Below-mean faulters donate half their surplus to above-mean ones.
    MinGuaranteeWorkStealing,
    /// Minimum guarantee plus a pool apportioned by window thrash
    /// refaults (working-set pressure, not raw miss volume).
    RefaultProportional,
    /// Per-VM p99 fault-latency SLOs: when a protected VM runs over its
    /// target, non-violating VMs are throttled down to fund it, never
    /// below the floor.
    SloGuarded,
}

impl ArbiterPolicy {
    /// The `policy` label value (telemetry, bench output).
    pub fn label(self) -> &'static str {
        match self {
            ArbiterPolicy::StaticQuota => "static_quota",
            ArbiterPolicy::FaultRateProportional => "fault_rate_proportional",
            ArbiterPolicy::MinGuaranteeWorkStealing => "min_guarantee_work_stealing",
            ArbiterPolicy::RefaultProportional => "refault_proportional",
            ArbiterPolicy::SloGuarded => "slo_guarded",
        }
    }

    /// Every policy, in declaration order.
    pub const ALL: [ArbiterPolicy; 5] = [
        ArbiterPolicy::StaticQuota,
        ArbiterPolicy::FaultRateProportional,
        ArbiterPolicy::MinGuaranteeWorkStealing,
        ArbiterPolicy::RefaultProportional,
        ArbiterPolicy::SloGuarded,
    ];
}

/// One VM's demand signals over the last rebalance window.
#[derive(Debug, Clone, Copy, Default)]
pub struct VmDemand {
    /// Major faults in the window — the pressure capacity relieves.
    pub major_faults: u64,
    /// Thrash refaults in the window — refaults whose distance fell
    /// inside the VM's working-set estimate, i.e. the faults more DRAM
    /// would actually have avoided. Weighs `RefaultProportional`.
    pub thrash_refaults: u64,
    /// Hit ratio over the window (`1.0` when idle).
    pub hit_ratio: f64,
    /// Operator-requested footprint ceiling, if any.
    pub balloon_target: Option<u64>,
    /// The capacity currently granted.
    pub current_pages: u64,
    /// Observed p99 fault latency over the window, in microseconds
    /// (`0.0` when the VM took no faults).
    pub p99_fault_us: f64,
    /// The VM's p99 fault-latency SLO target in microseconds, if it has
    /// one. Only [`ArbiterPolicy::SloGuarded`] reads it.
    pub slo_p99_us: Option<f64>,
}

/// The arbiter's configuration.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterConfig {
    /// Host DRAM available to VM LRU buffers, in pages.
    pub total_pages: u64,
    /// Per-VM minimum guarantee (clamped to `total/n` if infeasible).
    pub min_pages: u64,
    /// The active policy.
    pub policy: ArbiterPolicy,
}

/// The outcome of one planning round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterPlan {
    /// Next capacity per VM, index-aligned with the input demands.
    pub capacities: Vec<u64>,
    /// Whether each VM's grant was clamped by its balloon target.
    pub balloon_clamped: Vec<bool>,
    /// Whether each VM was throttled this round to fund an SLO-violating
    /// neighbor (only [`ArbiterPolicy::SloGuarded`] sets these).
    pub slo_throttled: Vec<bool>,
}

impl ArbiterPlan {
    /// Sum of all grants (never exceeds the configured total).
    pub fn granted(&self) -> u64 {
        self.capacities.iter().sum()
    }
}

/// Splits `pool` across `weights` by largest-remainder apportionment:
/// exact floors first, then one extra page each to the largest
/// remainders (ties to the lowest index). Zero total weight means an
/// even split. Deterministic, sums exactly to `pool`.
fn apportion(pool: u64, weights: &[u64]) -> Vec<u64> {
    let n = weights.len();
    if n == 0 || pool == 0 {
        return vec![0; n];
    }
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total == 0 {
        let base = pool / n as u64;
        let extra = (pool % n as u64) as usize;
        return (0..n).map(|i| base + u64::from(i < extra)).collect();
    }
    let mut shares: Vec<u64> = Vec::with_capacity(n);
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(n);
    for (i, &w) in weights.iter().enumerate() {
        let exact = u128::from(pool) * u128::from(w);
        shares.push((exact / total) as u64);
        remainders.push((exact % total, i));
    }
    let assigned: u64 = shares.iter().sum();
    let mut leftover = pool - assigned;
    // Largest remainder first; ties broken by the lower index.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in &remainders {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    shares
}

/// Computes the next per-VM capacities. See the module docs for policy
/// semantics. The returned grants never sum above `config.total_pages`.
pub fn plan(config: &ArbiterConfig, demands: &[VmDemand]) -> ArbiterPlan {
    let n = demands.len();
    if n == 0 {
        return ArbiterPlan {
            capacities: Vec::new(),
            balloon_clamped: Vec::new(),
            slo_throttled: Vec::new(),
        };
    }
    let total = config.total_pages;
    let min = config.min_pages.min(total / n as u64);
    // The demand signal the policy weighs — raw major faults, or (for
    // the refault policy) only the faults extra capacity would have
    // avoided. The balloon re-offer below reuses the same weights.
    let weights: Vec<u64> = match config.policy {
        ArbiterPolicy::RefaultProportional => demands.iter().map(|d| d.thrash_refaults).collect(),
        _ => demands.iter().map(|d| d.major_faults).collect(),
    };

    let mut slo_throttled = vec![false; n];
    let mut capacities: Vec<u64> = match config.policy {
        ArbiterPolicy::StaticQuota => apportion(total, &vec![1; n]),
        ArbiterPolicy::SloGuarded => {
            // Base split: fault-rate proportional, so the policy behaves
            // like the default one while every SLO is being met.
            let guaranteed = min * n as u64;
            let pool = total - guaranteed;
            let mut caps: Vec<u64> = apportion(pool, &weights)
                .into_iter()
                .map(|share| min + share)
                .collect();
            let violating: Vec<usize> = (0..n)
                .filter(|&i| {
                    demands[i]
                        .slo_p99_us
                        .is_some_and(|slo| demands[i].p99_fault_us > slo)
                })
                .collect();
            if !violating.is_empty() && violating.len() < n {
                // Throttle the noisy neighbors: every non-violating VM
                // donates half its surplus above the floor. The floor
                // itself is untouchable — throttled VMs keep making
                // progress.
                let mut freed = 0u64;
                for i in 0..n {
                    if !violating.contains(&i) {
                        let donation = caps[i].saturating_sub(min) / 2;
                        if donation > 0 {
                            caps[i] -= donation;
                            freed += donation;
                            slo_throttled[i] = true;
                        }
                    }
                }
                // Fund violators proportionally to how far over target
                // they run (permille overload, floored at 1 so a barely-
                // violating VM still gets a share).
                let overload: Vec<u64> = violating
                    .iter()
                    .map(|&i| {
                        let d = &demands[i];
                        let slo = d.slo_p99_us.expect("violator has a target");
                        (((d.p99_fault_us / slo - 1.0) * 1000.0).ceil() as u64).max(1)
                    })
                    .collect();
                let grants = apportion(freed, &overload);
                for (k, &i) in violating.iter().enumerate() {
                    caps[i] += grants[k];
                }
            }
            caps
        }
        ArbiterPolicy::FaultRateProportional | ArbiterPolicy::RefaultProportional => {
            let guaranteed = min * n as u64;
            let pool = total - guaranteed;
            apportion(pool, &weights)
                .into_iter()
                .map(|share| min + share)
                .collect()
        }
        ArbiterPolicy::MinGuaranteeWorkStealing => {
            // Start from the current grants, normalized to fit: an
            // incremental policy must not invent pages.
            let current: Vec<u64> = demands.iter().map(|d| d.current_pages.max(min)).collect();
            let current_sum: u64 = current.iter().sum();
            let mut caps = if current_sum > total || current_sum == 0 {
                apportion(total, &vec![1; n])
            } else {
                current
            };
            let total_faults: u64 = weights.iter().sum();
            if total_faults > 0 {
                // Strictly-below-mean VMs donate half their surplus over
                // the guarantee; above-mean VMs split the pool by their
                // fault counts.
                let mut pool = 0u64;
                let mut takers: Vec<usize> = Vec::new();
                for (i, &w) in weights.iter().enumerate() {
                    if u128::from(w) * (n as u128) < u128::from(total_faults) {
                        let donation = caps[i].saturating_sub(min) / 2;
                        caps[i] -= donation;
                        pool += donation;
                    } else {
                        takers.push(i);
                    }
                }
                if !takers.is_empty() && pool > 0 {
                    let taker_weights: Vec<u64> = takers.iter().map(|&i| weights[i]).collect();
                    let grants = apportion(pool, &taker_weights);
                    for (k, &i) in takers.iter().enumerate() {
                        caps[i] += grants[k];
                    }
                }
            }
            caps
        }
    };

    // Balloon targets clamp in every policy; freed pages are re-offered
    // to unclamped VMs in one apportionment round (by fault weight).
    let mut balloon_clamped = vec![false; n];
    for (i, d) in demands.iter().enumerate() {
        if let Some(target) = d.balloon_target {
            if capacities[i] > target {
                capacities[i] = target;
                balloon_clamped[i] = true;
            }
        }
    }
    if config.policy != ArbiterPolicy::StaticQuota {
        let granted: u64 = capacities.iter().sum();
        let freed = total.saturating_sub(granted);
        let open: Vec<usize> = (0..n).filter(|&i| !balloon_clamped[i]).collect();
        if freed > 0 && !open.is_empty() {
            let open_weights: Vec<u64> = open.iter().map(|&i| weights[i]).collect();
            let grants = apportion(freed, &open_weights);
            for (k, &i) in open.iter().enumerate() {
                let mut grant = grants[k];
                if let Some(target) = demands[i].balloon_target {
                    grant = grant.min(target.saturating_sub(capacities[i]));
                }
                capacities[i] += grant;
            }
        }
    }

    debug_assert!(capacities.iter().sum::<u64>() <= total);
    ArbiterPlan {
        capacities,
        balloon_clamped,
        slo_throttled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(major_faults: u64, current: u64) -> VmDemand {
        VmDemand {
            major_faults,
            hit_ratio: 0.9,
            current_pages: current,
            ..VmDemand::default()
        }
    }

    fn slo_demand(major_faults: u64, current: u64, p99_us: f64, slo_us: f64) -> VmDemand {
        VmDemand {
            p99_fault_us: p99_us,
            slo_p99_us: Some(slo_us),
            ..demand(major_faults, current)
        }
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        assert_eq!(apportion(10, &[1, 1, 1]), vec![4, 3, 3]);
        assert_eq!(apportion(100, &[0, 0]), vec![50, 50]);
        assert_eq!(apportion(7, &[5, 0, 2]), vec![5, 0, 2]);
        assert_eq!(apportion(1, &[3, 3]), vec![1, 0], "tie goes to index 0");
        let a = apportion(1000, &[7, 13, 29, 1]);
        assert_eq!(a.iter().sum::<u64>(), 1000);
        assert_eq!(a, apportion(1000, &[7, 13, 29, 1]));
    }

    #[test]
    fn static_quota_splits_evenly_regardless_of_demand() {
        let cfg = ArbiterConfig {
            total_pages: 100,
            min_pages: 10,
            policy: ArbiterPolicy::StaticQuota,
        };
        let p = plan(
            &cfg,
            &[
                demand(1_000, 25),
                demand(0, 25),
                demand(0, 25),
                demand(0, 25),
            ],
        );
        assert_eq!(p.capacities, vec![25, 25, 25, 25]);
        assert_eq!(p.granted(), 100);
    }

    #[test]
    fn proportional_feeds_the_hot_vm_but_keeps_the_guarantee() {
        let cfg = ArbiterConfig {
            total_pages: 512,
            min_pages: 48,
            policy: ArbiterPolicy::FaultRateProportional,
        };
        let p = plan(
            &cfg,
            &[
                demand(900, 128),
                demand(50, 128),
                demand(50, 128),
                demand(0, 128),
            ],
        );
        assert_eq!(p.granted(), 512);
        assert!(p.capacities[0] > 300, "{:?}", p.capacities);
        for &c in &p.capacities {
            assert!(c >= 48, "guarantee violated: {:?}", p.capacities);
        }
        // An idle VM holds exactly the guarantee.
        assert_eq!(p.capacities[3], 48);
    }

    #[test]
    fn proportional_with_no_faults_is_an_even_split() {
        let cfg = ArbiterConfig {
            total_pages: 120,
            min_pages: 10,
            policy: ArbiterPolicy::FaultRateProportional,
        };
        let p = plan(&cfg, &[demand(0, 40), demand(0, 40), demand(0, 40)]);
        assert_eq!(p.capacities, vec![40, 40, 40]);
    }

    #[test]
    fn work_stealing_moves_surplus_toward_the_faulter() {
        let cfg = ArbiterConfig {
            total_pages: 400,
            min_pages: 20,
            policy: ArbiterPolicy::MinGuaranteeWorkStealing,
        };
        let demands = [
            demand(800, 100),
            demand(10, 100),
            demand(10, 100),
            demand(10, 100),
        ];
        let p = plan(&cfg, &demands);
        assert!(p.granted() <= 400);
        assert!(p.capacities[0] > 100, "{:?}", p.capacities);
        for i in 1..4 {
            assert!(
                p.capacities[i] >= 20 && p.capacities[i] < 100,
                "{:?}",
                p.capacities
            );
        }
        // Iterating converges further toward the hot VM without ever
        // exceeding the budget.
        let again = plan(
            &cfg,
            &[
                VmDemand {
                    current_pages: p.capacities[0],
                    ..demands[0]
                },
                VmDemand {
                    current_pages: p.capacities[1],
                    ..demands[1]
                },
                VmDemand {
                    current_pages: p.capacities[2],
                    ..demands[2]
                },
                VmDemand {
                    current_pages: p.capacities[3],
                    ..demands[3]
                },
            ],
        );
        assert!(again.capacities[0] >= p.capacities[0]);
        assert!(again.granted() <= 400);
    }

    #[test]
    fn work_stealing_idles_when_nobody_faults() {
        let cfg = ArbiterConfig {
            total_pages: 300,
            min_pages: 10,
            policy: ArbiterPolicy::MinGuaranteeWorkStealing,
        };
        let p = plan(&cfg, &[demand(0, 150), demand(0, 150)]);
        assert_eq!(p.capacities, vec![150, 150], "no faults, no movement");
    }

    #[test]
    fn refault_proportional_ignores_cold_miss_volume() {
        let cfg = ArbiterConfig {
            total_pages: 400,
            min_pages: 40,
            policy: ArbiterPolicy::RefaultProportional,
        };
        // VM 0 streams: a flood of major faults but zero refaults. VM 1
        // thrashes a too-small working set: fewer faults, all thrash.
        let mut streamer = demand(5_000, 100);
        streamer.thrash_refaults = 0;
        let mut thrasher = demand(600, 100);
        thrasher.thrash_refaults = 550;
        let p = plan(&cfg, &[streamer, thrasher]);
        assert_eq!(p.granted(), 400);
        assert_eq!(p.capacities[0], 40, "streamer holds only the guarantee");
        assert_eq!(p.capacities[1], 360, "thrasher takes the whole pool");

        // Fault-rate-proportional gets this backwards — the contrast the
        // policy exists for.
        let cfg_faults = ArbiterConfig {
            policy: ArbiterPolicy::FaultRateProportional,
            ..cfg
        };
        let p = plan(&cfg_faults, &[streamer, thrasher]);
        assert!(p.capacities[0] > p.capacities[1], "{:?}", p.capacities);
    }

    #[test]
    fn refault_proportional_with_no_refaults_splits_evenly() {
        let cfg = ArbiterConfig {
            total_pages: 120,
            min_pages: 10,
            policy: ArbiterPolicy::RefaultProportional,
        };
        let p = plan(&cfg, &[demand(500, 40), demand(0, 40), demand(9, 40)]);
        assert_eq!(p.capacities, vec![40, 40, 40]);
    }

    #[test]
    fn slo_guarded_matches_proportional_while_slos_hold() {
        let total = 512;
        let demands = [
            slo_demand(900, 128, 80.0, 100.0), // protected, under target
            demand(50, 128),
            demand(50, 128),
            demand(0, 128),
        ];
        let guarded = plan(
            &ArbiterConfig {
                total_pages: total,
                min_pages: 48,
                policy: ArbiterPolicy::SloGuarded,
            },
            &demands,
        );
        let proportional = plan(
            &ArbiterConfig {
                total_pages: total,
                min_pages: 48,
                policy: ArbiterPolicy::FaultRateProportional,
            },
            &demands,
        );
        assert_eq!(guarded.capacities, proportional.capacities);
        assert!(guarded.slo_throttled.iter().all(|&t| !t));
    }

    #[test]
    fn slo_violation_throttles_neighbors_but_keeps_the_floor() {
        let cfg = ArbiterConfig {
            total_pages: 400,
            min_pages: 20,
            policy: ArbiterPolicy::SloGuarded,
        };
        // VM 0 is protected and running 3x over its p99 target; the
        // other three are unprotected noisy neighbors faulting heavily.
        let p = plan(
            &cfg,
            &[
                slo_demand(100, 100, 300.0, 100.0),
                demand(400, 100),
                demand(400, 100),
                demand(400, 100),
            ],
        );
        let base = plan(
            &ArbiterConfig {
                policy: ArbiterPolicy::FaultRateProportional,
                ..cfg
            },
            &[
                demand(100, 100),
                demand(400, 100),
                demand(400, 100),
                demand(400, 100),
            ],
        );
        assert!(
            p.capacities[0] > base.capacities[0],
            "violator got funded: {:?} vs base {:?}",
            p.capacities,
            base.capacities
        );
        assert!(!p.slo_throttled[0]);
        for i in 1..4 {
            assert!(p.slo_throttled[i], "{:?}", p.slo_throttled);
            assert!(p.capacities[i] >= 20, "floor breached: {:?}", p.capacities);
            assert!(p.capacities[i] < base.capacities[i]);
        }
        assert!(p.granted() <= 400);
    }

    #[test]
    fn slo_overload_magnitude_weights_the_grants() {
        let cfg = ArbiterConfig {
            total_pages: 600,
            min_pages: 20,
            policy: ArbiterPolicy::SloGuarded,
        };
        // Two violators: one barely over, one 5x over. Same fault
        // volume, so the base split treats them alike — the overload
        // weighting must not.
        let p = plan(
            &cfg,
            &[
                slo_demand(200, 150, 101.0, 100.0),
                slo_demand(200, 150, 500.0, 100.0),
                demand(200, 150),
                demand(200, 150),
            ],
        );
        assert!(
            p.capacities[1] > p.capacities[0],
            "5x-over violator must out-rank the marginal one: {:?}",
            p.capacities
        );
    }

    #[test]
    fn all_violating_fleet_cannot_steal_from_anyone() {
        let cfg = ArbiterConfig {
            total_pages: 200,
            min_pages: 10,
            policy: ArbiterPolicy::SloGuarded,
        };
        let demands = [
            slo_demand(100, 100, 300.0, 100.0),
            slo_demand(100, 100, 300.0, 100.0),
        ];
        let p = plan(&cfg, &demands);
        // Nobody to throttle: the plan degrades to the base split.
        assert_eq!(p.capacities, vec![100, 100]);
        assert!(p.slo_throttled.iter().all(|&t| !t));
    }

    #[test]
    fn balloon_target_clamps_and_frees_pages() {
        let cfg = ArbiterConfig {
            total_pages: 200,
            min_pages: 10,
            policy: ArbiterPolicy::FaultRateProportional,
        };
        let mut hot = demand(500, 100);
        hot.balloon_target = Some(40);
        let p = plan(&cfg, &[hot, demand(500, 100)]);
        assert_eq!(p.capacities[0], 40, "balloon beats demand");
        assert!(p.balloon_clamped[0]);
        assert!(!p.balloon_clamped[1]);
        // The freed pages flowed to the unclamped VM.
        assert_eq!(p.capacities[1], 160);
    }

    #[test]
    fn infeasible_min_is_scaled_down() {
        let cfg = ArbiterConfig {
            total_pages: 30,
            min_pages: 100,
            policy: ArbiterPolicy::FaultRateProportional,
        };
        let p = plan(&cfg, &[demand(5, 10), demand(5, 10), demand(5, 10)]);
        assert_eq!(p.granted(), 30);
        for &c in &p.capacities {
            assert!(c >= 10);
        }
    }

    #[test]
    fn empty_fleet_plans_nothing() {
        let cfg = ArbiterConfig {
            total_pages: 100,
            min_pages: 10,
            policy: ArbiterPolicy::StaticQuota,
        };
        assert_eq!(plan(&cfg, &[]).capacities.len(), 0);
    }
}
