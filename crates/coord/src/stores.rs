//! Store-node membership: TTL leases whose expiry is watch-visible.
//!
//! The cluster layer (`fluidmem-kv`'s `ClusterStore`) shards remote
//! memory across store nodes; the host agent drives ring membership from
//! this directory. Each node holds a znode at `/fluidmem/stores/<id>`
//! whose payload is its lease **deadline** in virtual nanoseconds.
//!
//! Unlike VM leases ([`HostDirectory`](crate::HostDirectory)), store
//! leases are *not* session ephemerals — session expiry removes
//! ephemerals without firing watches, and a migration copier streaming
//! pages to a node **must** hear about that node's death promptly and
//! deterministically. TTL leases solve this: a sweeper (the host agent)
//! calls [`expire_due`](StoreDirectory::expire_due) on its own cadence,
//! and every overdue lease is removed by an explicitly *proposed delete*,
//! which fires `Deleted` on node watches like any other committed write.
//! Expiry is therefore an ordered, replayable event in the cluster's
//! total order — the same seed always aborts or retargets a migration at
//! the same instant.

use crate::cluster::{CoordCluster, SessionId};
use crate::error::CoordError;
use crate::log::WriteOp;
use crate::watch::WatchEvent;
use fluidmem_sim::SimInstant;

const ROOT: &str = "/fluidmem";
const STORES: &str = "/fluidmem/stores";

/// A host agent's handle on the store-node lease directory
/// (`/fluidmem/stores`).
#[derive(Debug)]
pub struct StoreDirectory {
    session: SessionId,
}

impl StoreDirectory {
    /// Creates the directory znodes (idempotent) and the session its
    /// watches live under.
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors.
    pub fn init(cluster: &mut CoordCluster) -> Result<Self, CoordError> {
        for path in [ROOT, STORES] {
            match cluster.propose(WriteOp::Create {
                path: path.into(),
                data: Vec::new(),
                ephemeral_owner: None,
            }) {
                Ok(_) | Err(CoordError::NodeExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(StoreDirectory {
            session: cluster.create_session(),
        })
    }

    /// The session this directory's watches are registered under.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Registers a store node with a lease running until `deadline`.
    /// The create fires `Created` on a watch armed at the node's own
    /// lease path; joins are otherwise discovered by re-reading
    /// [`live`](StoreDirectory::live) (the host agent is the one adding
    /// nodes, so it never needs to be told).
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::NodeExists`] if the node is already
    /// registered, or with cluster availability errors.
    pub fn register(
        &self,
        cluster: &mut CoordCluster,
        node: u32,
        deadline: SimInstant,
    ) -> Result<(), CoordError> {
        cluster
            .propose(WriteOp::Create {
                path: Self::node_path(node),
                data: deadline.as_nanos().to_string().into_bytes(),
                ephemeral_owner: None,
            })
            .map(|_| ())
    }

    /// Extends a node's lease to `deadline` (heartbeat).
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::NoNode`] if the lease is gone (the node
    /// was expired or deregistered), or with cluster availability errors.
    pub fn renew(
        &self,
        cluster: &mut CoordCluster,
        node: u32,
        deadline: SimInstant,
    ) -> Result<(), CoordError> {
        cluster
            .propose(WriteOp::SetData {
                path: Self::node_path(node),
                data: deadline.as_nanos().to_string().into_bytes(),
                expected_version: None,
            })
            .map(|_| ())
    }

    /// Gracefully removes a node's lease. The explicit delete fires
    /// `Deleted` on node watches.
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::NoNode`] if the lease is already gone,
    /// or with cluster availability errors.
    pub fn deregister(&self, cluster: &mut CoordCluster, node: u32) -> Result<(), CoordError> {
        cluster
            .propose(WriteOp::Delete {
                path: Self::node_path(node),
            })
            .map(|_| ())
    }

    /// Sweeps the directory: every lease whose deadline is at or before
    /// `now` is removed by a proposed delete (firing `Deleted` watches),
    /// and the expired node ids are returned in ascending order.
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors; a sweep that fails
    /// part-way leaves the remaining overdue leases for the next sweep.
    pub fn expire_due(
        &self,
        cluster: &mut CoordCluster,
        now: SimInstant,
    ) -> Result<Vec<u32>, CoordError> {
        let mut expired = Vec::new();
        for (node, deadline) in self.leases(cluster) {
            if deadline <= now {
                match cluster.propose(WriteOp::Delete {
                    path: Self::node_path(node),
                }) {
                    // A concurrent deregister got there first: fine.
                    Ok(_) => expired.push(node),
                    Err(CoordError::NoNode(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(expired)
    }

    /// Node ids with live leases, ascending.
    pub fn live(&self, cluster: &mut CoordCluster) -> Vec<u32> {
        self.leases(cluster).into_iter().map(|(n, _)| n).collect()
    }

    /// A registered node's current lease deadline.
    pub fn deadline_of(&self, cluster: &mut CoordCluster, node: u32) -> Option<SimInstant> {
        let znode = cluster.read(&Self::node_path(node))?;
        let nanos: u64 = String::from_utf8(znode.data).ok()?.parse().ok()?;
        Some(SimInstant::from_nanos(nanos))
    }

    /// Arms one-shot watches on the directory (node joins) and every
    /// current lease (deregistrations *and* expiries — both are explicit
    /// deletes here). Re-arm after draining events.
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors.
    pub fn watch_nodes(&self, cluster: &mut CoordCluster) -> Result<(), CoordError> {
        cluster.watch(self.session, STORES)?;
        for (node, _) in self.leases(cluster) {
            cluster.watch(self.session, &Self::node_path(node))?;
        }
        Ok(())
    }

    /// Drains watch events fired since the last call.
    pub fn events(&self, cluster: &mut CoordCluster) -> Vec<WatchEvent> {
        cluster.take_watch_events(self.session)
    }

    /// The lease path of a store node.
    pub fn node_path(node: u32) -> String {
        format!("{STORES}/{node:04}")
    }

    /// Parses a lease path back to its node id.
    pub fn parse_node_path(path: &str) -> Option<u32> {
        path.strip_prefix(STORES)?.strip_prefix('/')?.parse().ok()
    }

    /// Every `(node, deadline)` lease, ascending by node id.
    fn leases(&self, cluster: &mut CoordCluster) -> Vec<(u32, SimInstant)> {
        let mut out: Vec<(u32, SimInstant)> = cluster
            .children(STORES)
            .iter()
            .filter_map(|path| {
                let node = Self::parse_node_path(path)?;
                let znode = cluster.read(path)?;
                let nanos: u64 = String::from_utf8(znode.data).ok()?.parse().ok()?;
                Some((node, SimInstant::from_nanos(nanos)))
            })
            .collect();
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watch::WatchKind;
    use fluidmem_sim::{SimClock, SimDuration, SimRng};

    fn cluster() -> CoordCluster {
        CoordCluster::new(3, SimClock::new(), SimRng::seed_from_u64(5))
    }

    fn at_us(us: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(us)
    }

    #[test]
    fn register_renew_deregister_roundtrip() {
        let mut c = cluster();
        let dir = StoreDirectory::init(&mut c).unwrap();
        dir.register(&mut c, 0, at_us(100)).unwrap();
        dir.register(&mut c, 1, at_us(100)).unwrap();
        assert_eq!(dir.live(&mut c), vec![0, 1]);
        assert_eq!(dir.deadline_of(&mut c, 0), Some(at_us(100)));
        dir.renew(&mut c, 0, at_us(500)).unwrap();
        assert_eq!(dir.deadline_of(&mut c, 0), Some(at_us(500)));
        dir.deregister(&mut c, 1).unwrap();
        assert_eq!(dir.live(&mut c), vec![0]);
        assert!(dir.deregister(&mut c, 1).is_err());
    }

    #[test]
    fn expiry_is_an_explicit_watchable_delete() {
        // The design point this directory exists for: unlike session
        // ephemerals (watch-invisible expiry), an overdue TTL lease is
        // reaped by a proposed delete, so node watches fire Deleted and
        // a migration copier can abort deterministically.
        let mut c = cluster();
        let dir = StoreDirectory::init(&mut c).unwrap();
        dir.register(&mut c, 0, at_us(100)).unwrap();
        dir.register(&mut c, 1, at_us(300)).unwrap();
        dir.watch_nodes(&mut c).unwrap();

        assert!(dir.expire_due(&mut c, at_us(99)).unwrap().is_empty());
        assert!(dir.events(&mut c).is_empty(), "nothing due, no events");

        let expired = dir.expire_due(&mut c, at_us(200)).unwrap();
        assert_eq!(expired, vec![0]);
        let events = dir.events(&mut c);
        assert!(
            events
                .iter()
                .any(|e| e.path == StoreDirectory::node_path(0) && e.kind == WatchKind::Deleted),
            "{events:?}"
        );
        assert_eq!(dir.live(&mut c), vec![1]);
    }

    #[test]
    fn renewed_lease_survives_the_sweep() {
        let mut c = cluster();
        let dir = StoreDirectory::init(&mut c).unwrap();
        dir.register(&mut c, 7, at_us(100)).unwrap();
        dir.renew(&mut c, 7, at_us(1000)).unwrap();
        assert!(dir.expire_due(&mut c, at_us(500)).unwrap().is_empty());
        assert_eq!(dir.live(&mut c), vec![7]);
    }

    #[test]
    fn an_awaited_join_fires_created() {
        // An observer expecting node 3 (say, a retargeted migration's
        // destination coming up) arms a watch at the lease path itself.
        let mut c = cluster();
        let dir = StoreDirectory::init(&mut c).unwrap();
        c.watch(dir.session(), &StoreDirectory::node_path(3))
            .unwrap();
        dir.register(&mut c, 3, at_us(50)).unwrap();
        let events = dir.events(&mut c);
        assert!(
            events
                .iter()
                .any(|e| e.path == StoreDirectory::node_path(3) && e.kind == WatchKind::Created),
            "{events:?}"
        );
    }

    #[test]
    fn node_path_parses_back() {
        assert_eq!(
            StoreDirectory::parse_node_path(&StoreDirectory::node_path(42)),
            Some(42)
        );
        assert_eq!(StoreDirectory::parse_node_path("/fluidmem/hosts/1"), None);
    }
}
