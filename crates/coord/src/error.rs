//! Coordination-service errors.

use std::error::Error;
use std::fmt;

/// Errors returned by the coordination service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// The path does not exist.
    NoNode(String),
    /// A node already exists at the path.
    NodeExists(String),
    /// The parent of the path does not exist.
    NoParent(String),
    /// The node still has children and cannot be deleted.
    NotEmpty(String),
    /// A compare-and-set failed because the version did not match.
    BadVersion {
        /// The path whose write failed.
        path: String,
        /// Version the caller expected.
        expected: u64,
        /// Version actually present.
        actual: u64,
    },
    /// Fewer than a majority of replicas are alive; writes cannot commit.
    NoQuorum {
        /// Replicas currently alive.
        alive: usize,
        /// Majority required.
        needed: usize,
    },
    /// No leader is currently elected.
    NoLeader,
    /// The session is unknown or already closed.
    UnknownSession,
    /// An invalid path was supplied (must start with `/`, no empty
    /// components, no trailing `/`).
    BadPath(String),
    /// The 12-bit partition namespace is exhausted.
    PartitionsExhausted,
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::NoNode(p) => write!(f, "no node at {p}"),
            CoordError::NodeExists(p) => write!(f, "node already exists at {p}"),
            CoordError::NoParent(p) => write!(f, "parent of {p} does not exist"),
            CoordError::NotEmpty(p) => write!(f, "node {p} has children"),
            CoordError::BadVersion {
                path,
                expected,
                actual,
            } => write!(
                f,
                "version mismatch at {path}: expected {expected}, found {actual}"
            ),
            CoordError::NoQuorum { alive, needed } => {
                write!(f, "quorum lost: {alive} replicas alive, {needed} required")
            }
            CoordError::NoLeader => write!(f, "no leader elected"),
            CoordError::UnknownSession => write!(f, "unknown or closed session"),
            CoordError::BadPath(p) => write!(f, "invalid path {p:?}"),
            CoordError::PartitionsExhausted => {
                write!(f, "all 4096 virtual partitions are allocated")
            }
        }
    }
}

impl Error for CoordError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_path() {
        assert!(CoordError::NoNode("/a/b".into())
            .to_string()
            .contains("/a/b"));
        let e = CoordError::BadVersion {
            path: "/x".into(),
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 1"));
    }
}
