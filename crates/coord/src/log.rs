//! The replicated log: operations and entries.

use crate::error::CoordError;
use crate::znode::ZnodeTree;

/// A write operation proposed to the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Create a node.
    Create {
        /// Absolute path.
        path: String,
        /// Payload.
        data: Vec<u8>,
        /// Owning session if ephemeral.
        ephemeral_owner: Option<u64>,
    },
    /// Create a sequential node under the given prefix.
    CreateSequential {
        /// Path prefix; the parent's counter is appended.
        prefix: String,
        /// Payload.
        data: Vec<u8>,
        /// Owning session if ephemeral.
        ephemeral_owner: Option<u64>,
    },
    /// Replace a node's data (compare-and-set when a version is given).
    SetData {
        /// Absolute path.
        path: String,
        /// New payload.
        data: Vec<u8>,
        /// Expected current version for CAS semantics.
        expected_version: Option<u64>,
    },
    /// Delete a childless node.
    Delete {
        /// Absolute path.
        path: String,
    },
    /// Expire a session, removing its ephemeral nodes.
    ExpireSession {
        /// The session to expire.
        session: u64,
    },
}

/// The result of applying a [`WriteOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// The op succeeded with no payload.
    Done,
    /// A sequential create returning the path it created.
    Created(String),
    /// A `SetData` returning the node's new version.
    Version(u64),
}

impl WriteOp {
    /// Applies the operation to a tree. Deterministic: every replica
    /// applying the same committed prefix reaches the same tree.
    pub fn apply(&self, tree: &mut ZnodeTree) -> Result<OpResult, CoordError> {
        match self {
            WriteOp::Create {
                path,
                data,
                ephemeral_owner,
            } => {
                tree.create(path, data.clone(), *ephemeral_owner)?;
                Ok(OpResult::Done)
            }
            WriteOp::CreateSequential {
                prefix,
                data,
                ephemeral_owner,
            } => {
                let path = tree.create_sequential(prefix, data.clone(), *ephemeral_owner)?;
                Ok(OpResult::Created(path))
            }
            WriteOp::SetData {
                path,
                data,
                expected_version,
            } => {
                let v = tree.set_data(path, data.clone(), *expected_version)?;
                Ok(OpResult::Version(v))
            }
            WriteOp::Delete { path } => {
                tree.delete(path)?;
                Ok(OpResult::Done)
            }
            WriteOp::ExpireSession { session } => {
                tree.expire_session(*session);
                Ok(OpResult::Done)
            }
        }
    }
}

/// One entry in the replicated log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Leadership epoch in which the entry was proposed.
    pub epoch: u64,
    /// Zero-based log index.
    pub index: u64,
    /// The operation.
    pub op: WriteOp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_create_and_set() {
        let mut t = ZnodeTree::new();
        WriteOp::Create {
            path: "/a".into(),
            data: vec![1],
            ephemeral_owner: None,
        }
        .apply(&mut t)
        .unwrap();
        let r = WriteOp::SetData {
            path: "/a".into(),
            data: vec![2],
            expected_version: Some(0),
        }
        .apply(&mut t)
        .unwrap();
        assert_eq!(r, OpResult::Version(1));
        assert_eq!(t.get("/a").unwrap().data, vec![2]);
    }

    #[test]
    fn apply_sequential_returns_path() {
        let mut t = ZnodeTree::new();
        t.create("/q", vec![], None).unwrap();
        let r = WriteOp::CreateSequential {
            prefix: "/q/n-".into(),
            data: vec![],
            ephemeral_owner: None,
        }
        .apply(&mut t)
        .unwrap();
        assert_eq!(r, OpResult::Created("/q/n-0000000000".into()));
    }

    #[test]
    fn failed_ops_do_not_mutate() {
        let mut t = ZnodeTree::new();
        let before = t.clone();
        let err = WriteOp::Delete {
            path: "/nope".into(),
        }
        .apply(&mut t);
        assert!(err.is_err());
        assert_eq!(t, before);
    }
}
