//! The replicated cluster: leader, quorum commit, failover.

use std::collections::HashSet;
use std::fmt;

use fluidmem_sim::{LatencyModel, SimClock, SimRng};

use crate::error::CoordError;
use crate::log::{LogEntry, OpResult, WriteOp};
use crate::watch::{WatchEvent, WatchKind};
use crate::znode::{Znode, ZnodeTree};

/// Identifies one replica in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub usize);

/// A client session; ephemeral znodes die with their session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

#[derive(Debug)]
struct Replica {
    log: Vec<LogEntry>,
    /// Number of committed (and applied) log entries.
    committed: u64,
    tree: ZnodeTree,
    alive: bool,
}

impl Replica {
    fn new() -> Self {
        Replica {
            log: Vec::new(),
            committed: 0,
            tree: ZnodeTree::new(),
            alive: true,
        }
    }

    fn last_epoch(&self) -> u64 {
        self.log.last().map(|e| e.epoch).unwrap_or(0)
    }
}

/// A majority-quorum replicated coordination cluster (ZAB-style).
///
/// Writes go through the leader, append to a replicated log, and commit
/// once a majority of replicas (leader included) hold them; committed
/// operations are applied to every live replica's [`ZnodeTree`], so all
/// live replicas expose identical state. On leader failure,
/// [`elect`](CoordCluster::elect) chooses the surviving replica with the
/// most advanced log — because every committed entry lives on a majority,
/// the new leader necessarily has all of them, and **committed writes are
/// never lost while a majority survives** (verified by this crate's
/// failover tests).
///
/// # Example
///
/// ```
/// use fluidmem_coord::{CoordCluster, WriteOp};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let mut c = CoordCluster::new(3, SimClock::new(), SimRng::seed_from_u64(1));
/// c.propose(WriteOp::Create { path: "/a".into(), data: vec![1], ephemeral_owner: None })?;
/// assert_eq!(c.read("/a").unwrap().data, vec![1]);
/// # Ok::<(), fluidmem_coord::CoordError>(())
/// ```
pub struct CoordCluster {
    replicas: Vec<Replica>,
    epoch: u64,
    leader: Option<usize>,
    next_session: u64,
    open_sessions: HashSet<u64>,
    /// One-shot watches: path → sessions waiting on it.
    watches: std::collections::HashMap<String, Vec<u64>>,
    /// Delivered watch events, per session.
    watch_events: std::collections::HashMap<u64, Vec<WatchEvent>>,
    clock: SimClock,
    rng: SimRng,
    /// One-way message latency between any two nodes (TCP control plane).
    rpc: LatencyModel,
    /// Committed proposals / leader elections / sessions opened, exported
    /// under `fluidmem_coord_events_total`.
    proposals: fluidmem_telemetry::Counter,
    elections: fluidmem_telemetry::Counter,
    sessions_opened: fluidmem_telemetry::Counter,
}

impl CoordCluster {
    /// Creates a cluster of `replicas` nodes with replica 0 as the initial
    /// leader.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize, clock: SimClock, rng: SimRng) -> Self {
        assert!(replicas > 0, "cluster needs at least one replica");
        CoordCluster {
            replicas: (0..replicas).map(|_| Replica::new()).collect(),
            epoch: 1,
            leader: Some(0),
            next_session: 1,
            open_sessions: HashSet::new(),
            watches: std::collections::HashMap::new(),
            watch_events: std::collections::HashMap::new(),
            clock,
            rng,
            rpc: LatencyModel::lognormal_mean_p99_us(120.0, 400.0),
            proposals: fluidmem_telemetry::Counter::new(),
            elections: fluidmem_telemetry::Counter::new(),
            sessions_opened: fluidmem_telemetry::Counter::new(),
        }
    }

    /// Number of replicas (alive or dead).
    pub fn size(&self) -> usize {
        self.replicas.len()
    }

    /// Majority quorum size.
    pub fn quorum(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    /// Replicas currently alive.
    pub fn alive_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.alive).count()
    }

    /// The current leader, if one is elected and alive.
    pub fn leader(&self) -> Option<ReplicaId> {
        self.leader
            .filter(|&l| self.replicas[l].alive)
            .map(ReplicaId)
    }

    /// Current leadership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Opens a client session.
    pub fn create_session(&mut self) -> SessionId {
        let id = self.next_session;
        self.next_session += 1;
        self.open_sessions.insert(id);
        self.sessions_opened.inc();
        self.charge_rtt();
        SessionId(id)
    }

    /// Closes a session, removing its ephemeral nodes cluster-wide.
    ///
    /// # Errors
    ///
    /// Fails if the session is unknown or the cluster cannot commit.
    pub fn close_session(&mut self, session: SessionId) -> Result<(), CoordError> {
        if !self.open_sessions.remove(&session.0) {
            return Err(CoordError::UnknownSession);
        }
        self.propose(WriteOp::ExpireSession { session: session.0 })
            .map(|_| ())
    }

    /// Whether a session is open.
    pub fn session_is_open(&self, session: SessionId) -> bool {
        self.open_sessions.contains(&session.0)
    }

    /// Proposes a write. Returns once the entry is committed on a majority
    /// and applied.
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::NoLeader`] / [`CoordError::NoQuorum`] when
    /// the cluster cannot commit, or with the operation's own validation
    /// error (no mutation happens in that case).
    pub fn propose(&mut self, op: WriteOp) -> Result<OpResult, CoordError> {
        let leader = match self.leader {
            Some(l) if self.replicas[l].alive => l,
            _ => return Err(CoordError::NoLeader),
        };
        let alive = self.alive_count();
        if alive < self.quorum() {
            return Err(CoordError::NoQuorum {
                alive,
                needed: self.quorum(),
            });
        }

        // Client → leader.
        self.charge_rtt();

        // Validate against the leader's current state without mutating it,
        // as ZooKeeper's PrepRequestProcessor does.
        let mut scratch = self.replicas[leader].tree.clone();
        let result = op.apply(&mut scratch)?;

        // Append to the leader's log and replicate; one parallel round
        // trip to the followers (charge the slowest).
        let index = self.replicas[leader].log.len() as u64;
        let entry = LogEntry {
            epoch: self.epoch,
            index,
            op,
        };
        let mut slowest = fluidmem_sim::SimDuration::ZERO;
        let follower_ids: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| i != leader && self.replicas[i].alive)
            .collect();
        for _ in &follower_ids {
            let rtt = self.rpc.sample(&mut self.rng) + self.rpc.sample(&mut self.rng);
            slowest = slowest.max(rtt);
        }
        self.clock.advance(slowest);

        for &i in &follower_ids {
            self.replicas[i].log.push(entry.clone());
        }
        self.replicas[leader].log.push(entry.clone());

        // Quorum reached (leader + live followers >= quorum was checked):
        // commit and apply everywhere alive.
        for i in 0..self.replicas.len() {
            if self.replicas[i].alive {
                let r = &mut self.replicas[i];
                debug_assert_eq!(r.committed, index, "replicas must commit in order");
                r.op_apply_committed();
            }
        }

        // Fire one-shot watches for the committed mutation.
        self.fire_watches(&entry.op);

        // Leader → client reply.
        self.charge_rtt();
        self.proposals.inc();
        Ok(result)
    }

    /// Registers a one-shot watch on a path for a session (ZooKeeper
    /// semantics: the next committed create/set/delete touching the path
    /// queues one event and removes the watch; re-registering the same
    /// watch is idempotent and still yields exactly one event).
    ///
    /// # Errors
    ///
    /// Fails if the session is unknown.
    pub fn watch(&mut self, session: SessionId, path: &str) -> Result<(), CoordError> {
        if !self.open_sessions.contains(&session.0) {
            return Err(CoordError::UnknownSession);
        }
        self.charge_rtt();
        let sessions = self.watches.entry(path.to_string()).or_default();
        if !sessions.contains(&session.0) {
            sessions.push(session.0);
        }
        Ok(())
    }

    /// Drains the watch events queued for a session.
    pub fn take_watch_events(&mut self, session: SessionId) -> Vec<WatchEvent> {
        self.watch_events.remove(&session.0).unwrap_or_default()
    }

    fn fire_watches(&mut self, op: &WriteOp) {
        let (path, kind) = match op {
            WriteOp::Create { path, .. } => (path.clone(), WatchKind::Created),
            WriteOp::CreateSequential { prefix, .. } => {
                // Watches on the parent fire for sequential creates.
                let parent = match prefix.rfind('/') {
                    Some(0) => "/".to_string(),
                    Some(i) => prefix[..i].to_string(),
                    None => "/".to_string(),
                };
                (parent, WatchKind::ChildrenChanged)
            }
            WriteOp::SetData { path, .. } => (path.clone(), WatchKind::DataChanged),
            WriteOp::Delete { path } => (path.clone(), WatchKind::Deleted),
            WriteOp::ExpireSession { .. } => return,
        };
        if let Some(sessions) = self.watches.remove(&path) {
            for session in sessions {
                if self.open_sessions.contains(&session) {
                    self.watch_events
                        .entry(session)
                        .or_default()
                        .push(WatchEvent {
                            path: path.clone(),
                            kind,
                        });
                }
            }
        }
    }

    /// Linearizable read from the leader.
    ///
    /// Returns `None` when the node does not exist. Charges a client round
    /// trip.
    pub fn read(&mut self, path: &str) -> Option<Znode> {
        self.charge_rtt();
        let leader = self.leader.filter(|&l| self.replicas[l].alive)?;
        self.replicas[leader].tree.get(path).cloned()
    }

    /// Children of a node, read from the leader.
    pub fn children(&mut self, path: &str) -> Vec<String> {
        self.charge_rtt();
        match self.leader.filter(|&l| self.replicas[l].alive) {
            Some(l) => self.replicas[l].tree.children(path),
            None => Vec::new(),
        }
    }

    /// Kills a replica. If it was the leader, the cluster has no leader
    /// until [`elect`](CoordCluster::elect) runs.
    pub fn kill(&mut self, id: ReplicaId) {
        self.replicas[id.0].alive = false;
        if self.leader == Some(id.0) {
            self.leader = None;
        }
    }

    /// Revives a replica, state-transferring the current leader's log and
    /// tree if a leader exists.
    pub fn revive(&mut self, id: ReplicaId) {
        if let Some(l) = self.leader.filter(|&l| self.replicas[l].alive) {
            if l != id.0 {
                let (log, committed, tree) = {
                    let lr = &self.replicas[l];
                    (lr.log.clone(), lr.committed, lr.tree.clone())
                };
                let r = &mut self.replicas[id.0];
                r.log = log;
                r.committed = committed;
                r.tree = tree;
            }
        }
        self.replicas[id.0].alive = true;
    }

    /// Elects a leader among the live replicas: the one with the most
    /// advanced log (highest last-entry epoch, then longest log, then
    /// highest id). The new leader commits its entire log and syncs the
    /// live followers to it.
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::NoQuorum`] if fewer than a majority are
    /// alive.
    pub fn elect(&mut self) -> Result<ReplicaId, CoordError> {
        let alive = self.alive_count();
        if alive < self.quorum() {
            return Err(CoordError::NoQuorum {
                alive,
                needed: self.quorum(),
            });
        }
        let winner = (0..self.replicas.len())
            .filter(|&i| self.replicas[i].alive)
            .max_by_key(|&i| {
                let r = &self.replicas[i];
                (r.last_epoch(), r.log.len(), i)
            })
            .expect("quorum implies at least one live replica");

        self.epoch += 1;
        self.leader = Some(winner);

        // Recovery: the winner's log is the cluster history. Commit all of
        // it locally, then state-transfer the live followers.
        while self.replicas[winner].committed < self.replicas[winner].log.len() as u64 {
            self.replicas[winner].op_apply_committed();
        }
        let (log, committed, tree) = {
            let w = &self.replicas[winner];
            (w.log.clone(), w.committed, w.tree.clone())
        };
        for i in 0..self.replicas.len() {
            if i != winner && self.replicas[i].alive {
                let r = &mut self.replicas[i];
                r.log = log.clone();
                r.committed = committed;
                r.tree = tree.clone();
            }
        }
        // An election costs a couple of message rounds.
        self.charge_rtt();
        self.charge_rtt();
        self.elections.inc();
        Ok(ReplicaId(winner))
    }

    /// The committed-entry count on the current leader (0 if none).
    pub fn committed_len(&self) -> u64 {
        self.leader
            .filter(|&l| self.replicas[l].alive)
            .map(|l| self.replicas[l].committed)
            .unwrap_or(0)
    }

    /// Test/verification hook: the tree of a specific replica.
    pub fn replica_tree(&self, id: ReplicaId) -> &ZnodeTree {
        &self.replicas[id.0].tree
    }

    /// Test/verification hook: whether a replica is alive.
    pub fn replica_alive(&self, id: ReplicaId) -> bool {
        self.replicas[id.0].alive
    }

    fn charge_rtt(&mut self) {
        let rtt = self.rpc.sample(&mut self.rng) + self.rpc.sample(&mut self.rng);
        self.clock.advance(rtt);
    }
}

impl Replica {
    /// Applies the next committed entry to the state machine. Errors are
    /// swallowed deliberately: a failed op (e.g. CAS conflict committed
    /// after validation) must fail identically on every replica, keeping
    /// trees in lock-step.
    fn op_apply_committed(&mut self) {
        let idx = self.committed as usize;
        let op = self.log[idx].op.clone();
        let _ = op.apply(&mut self.tree);
        self.committed += 1;
    }
}

impl fmt::Debug for CoordCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoordCluster")
            .field("size", &self.replicas.len())
            .field("alive", &self.alive_count())
            .field("leader", &self.leader)
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> CoordCluster {
        CoordCluster::new(n, SimClock::new(), SimRng::seed_from_u64(42))
    }

    fn create(path: &str) -> WriteOp {
        WriteOp::Create {
            path: path.into(),
            data: vec![],
            ephemeral_owner: None,
        }
    }

    #[test]
    fn write_visible_on_all_live_replicas() {
        let mut c = cluster(3);
        c.propose(create("/a")).unwrap();
        for i in 0..3 {
            assert!(
                c.replica_tree(ReplicaId(i)).exists("/a"),
                "replica {i} missing committed write"
            );
        }
    }

    #[test]
    fn writes_charge_virtual_time() {
        let mut c = cluster(3);
        let t0 = c.clock.now();
        c.propose(create("/a")).unwrap();
        assert!(c.clock.now() > t0);
    }

    #[test]
    fn no_quorum_blocks_writes() {
        let mut c = cluster(3);
        c.kill(ReplicaId(1));
        c.propose(create("/ok")).unwrap(); // 2 of 3 alive: fine
        c.kill(ReplicaId(2));
        let err = c.propose(create("/blocked")).unwrap_err();
        assert!(matches!(
            err,
            CoordError::NoQuorum {
                alive: 1,
                needed: 2
            }
        ));
        assert!(!c.replica_tree(ReplicaId(0)).exists("/blocked"));
    }

    #[test]
    fn leader_failover_preserves_committed_writes() {
        let mut c = cluster(5);
        c.propose(create("/before")).unwrap();
        let old = c.leader().unwrap();
        c.kill(old);
        assert!(c.leader().is_none());
        assert!(matches!(c.propose(create("/x")), Err(CoordError::NoLeader)));
        let new = c.elect().unwrap();
        assert_ne!(new, old);
        assert!(
            c.read("/before").is_some(),
            "committed write survived failover"
        );
        c.propose(create("/after")).unwrap();
        assert!(c.read("/after").is_some());
        assert!(c.epoch() >= 2);
    }

    #[test]
    fn election_needs_quorum() {
        let mut c = cluster(3);
        c.kill(ReplicaId(0));
        c.kill(ReplicaId(1));
        assert!(matches!(c.elect(), Err(CoordError::NoQuorum { .. })));
    }

    #[test]
    fn revived_replica_catches_up() {
        let mut c = cluster(3);
        c.kill(ReplicaId(2));
        c.propose(create("/while-dead")).unwrap();
        c.revive(ReplicaId(2));
        assert!(
            c.replica_tree(ReplicaId(2)).exists("/while-dead"),
            "state transfer on revive"
        );
        // And it participates in new commits.
        c.propose(create("/again")).unwrap();
        assert!(c.replica_tree(ReplicaId(2)).exists("/again"));
    }

    #[test]
    fn validation_errors_do_not_commit() {
        let mut c = cluster(3);
        let before = c.committed_len();
        let err = c.propose(WriteOp::Delete {
            path: "/nope".into(),
        });
        assert!(err.is_err());
        assert_eq!(c.committed_len(), before, "failed op must not append");
    }

    #[test]
    fn sequential_creates_unique_across_failover() {
        let mut c = cluster(5);
        c.propose(create("/q")).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            if let OpResult::Created(p) = c
                .propose(WriteOp::CreateSequential {
                    prefix: "/q/n-".into(),
                    data: vec![],
                    ephemeral_owner: None,
                })
                .unwrap()
            {
                assert!(seen.insert(p));
            } else {
                panic!("expected Created");
            }
        }
        let old = c.leader().unwrap();
        c.kill(old);
        c.elect().unwrap();
        for _ in 0..3 {
            if let OpResult::Created(p) = c
                .propose(WriteOp::CreateSequential {
                    prefix: "/q/n-".into(),
                    data: vec![],
                    ephemeral_owner: None,
                })
                .unwrap()
            {
                assert!(seen.insert(p), "sequence must not repeat after failover");
            }
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn session_expiry_removes_ephemerals() {
        let mut c = cluster(3);
        let s = c.create_session();
        c.propose(WriteOp::Create {
            path: "/eph".into(),
            data: vec![],
            ephemeral_owner: Some(s.0),
        })
        .unwrap();
        assert!(c.read("/eph").is_some());
        c.close_session(s).unwrap();
        assert!(c.read("/eph").is_none());
        assert!(!c.session_is_open(s));
        assert!(matches!(
            c.close_session(s),
            Err(CoordError::UnknownSession)
        ));
    }

    #[test]
    fn live_replicas_converge_after_churn() {
        let mut c = cluster(5);
        c.propose(create("/r")).unwrap();
        c.kill(ReplicaId(3));
        c.propose(create("/r/a")).unwrap();
        let old = c.leader().unwrap();
        c.kill(old);
        c.elect().unwrap();
        c.propose(create("/r/b")).unwrap();
        c.revive(ReplicaId(3));
        c.revive(old);
        c.propose(create("/r/c")).unwrap();
        let reference = c.replica_tree(ReplicaId(c.leader().unwrap().0)).clone();
        for i in 0..5 {
            if c.replica_alive(ReplicaId(i)) {
                assert_eq!(
                    c.replica_tree(ReplicaId(i)),
                    &reference,
                    "replica {i} diverged"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replica_cluster_rejected() {
        cluster(0);
    }

    #[test]
    fn watch_fires_once_on_change() {
        let mut c = cluster(3);
        let s = c.create_session();
        c.propose(create("/w")).unwrap();
        c.watch(s, "/w").unwrap();
        assert!(c.take_watch_events(s).is_empty(), "nothing changed yet");
        c.propose(WriteOp::SetData {
            path: "/w".into(),
            data: vec![1],
            expected_version: None,
        })
        .unwrap();
        let events = c.take_watch_events(s);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, crate::WatchKind::DataChanged);
        assert_eq!(events[0].path, "/w");
        // One-shot: a second change fires nothing.
        c.propose(WriteOp::SetData {
            path: "/w".into(),
            data: vec![2],
            expected_version: None,
        })
        .unwrap();
        assert!(c.take_watch_events(s).is_empty());
    }

    #[test]
    fn watch_sees_delete_and_create_kinds() {
        let mut c = cluster(3);
        let s = c.create_session();
        c.watch(s, "/x").unwrap();
        c.propose(create("/x")).unwrap();
        assert_eq!(c.take_watch_events(s)[0].kind, crate::WatchKind::Created);
        c.watch(s, "/x").unwrap();
        c.propose(WriteOp::Delete { path: "/x".into() }).unwrap();
        assert_eq!(c.take_watch_events(s)[0].kind, crate::WatchKind::Deleted);
    }

    #[test]
    fn sequential_create_fires_parent_watch() {
        let mut c = cluster(3);
        let s = c.create_session();
        c.propose(create("/q")).unwrap();
        c.watch(s, "/q").unwrap();
        c.propose(WriteOp::CreateSequential {
            prefix: "/q/n-".into(),
            data: vec![],
            ephemeral_owner: None,
        })
        .unwrap();
        let events = c.take_watch_events(s);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, crate::WatchKind::ChildrenChanged);
    }

    #[test]
    fn closed_sessions_get_no_events_and_cannot_watch() {
        let mut c = cluster(3);
        let s = c.create_session();
        c.propose(create("/y")).unwrap();
        c.watch(s, "/y").unwrap();
        c.close_session(s).unwrap();
        c.propose(WriteOp::Delete { path: "/y".into() }).unwrap();
        assert!(c.take_watch_events(s).is_empty());
        assert!(matches!(c.watch(s, "/y"), Err(CoordError::UnknownSession)));
    }
}
