//! One-shot watch notifications (ZooKeeper semantics).

/// What happened to a watched path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// The node was created.
    Created,
    /// The node's data changed.
    DataChanged,
    /// The node was deleted.
    Deleted,
    /// A sequential child was created under the watched parent.
    ChildrenChanged,
}

/// A fired watch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// The watched path.
    pub path: String,
    /// What happened.
    pub kind: WatchKind,
}
