//! The hierarchical znode namespace (the replicated state machine).

use std::collections::BTreeMap;

use crate::error::CoordError;

/// One node in the namespace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Znode {
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Write version, starting at 0 and incremented by each `set_data`.
    pub version: u64,
    /// Counter feeding sequential child names.
    pub seq_counter: u64,
    /// Session that owns this node if it is ephemeral.
    pub ephemeral_owner: Option<u64>,
}

/// A hierarchical path → [`Znode`] store with ZooKeeper's semantics:
/// versioned compare-and-set, sequential nodes, ephemeral nodes, and
/// parent-before-child structural rules.
///
/// `ZnodeTree` is a *deterministic state machine*: it contains no clocks
/// or randomness, so identical operation sequences yield identical trees
/// on every replica. All replication concerns live in
/// [`CoordCluster`](crate::CoordCluster).
///
/// # Example
///
/// ```
/// use fluidmem_coord::ZnodeTree;
///
/// let mut t = ZnodeTree::new();
/// t.create("/fluidmem", b"".to_vec(), None)?;
/// let p1 = t.create_sequential("/fluidmem/p-", b"vm1".to_vec(), None)?;
/// let p2 = t.create_sequential("/fluidmem/p-", b"vm2".to_vec(), None)?;
/// assert_ne!(p1, p2);
/// assert_eq!(t.get("/fluidmem").unwrap().version, 0);
/// # Ok::<(), fluidmem_coord::CoordError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZnodeTree {
    nodes: BTreeMap<String, Znode>,
}

impl ZnodeTree {
    /// Creates a tree containing only the root `/`.
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert("/".to_string(), Znode::default());
        ZnodeTree { nodes }
    }

    /// Validates a path: absolute, no empty components, no trailing slash
    /// (except the root itself).
    pub fn validate_path(path: &str) -> Result<(), CoordError> {
        if path == "/" {
            return Ok(());
        }
        if !path.starts_with('/') || path.ends_with('/') || path.contains("//") {
            return Err(CoordError::BadPath(path.to_string()));
        }
        Ok(())
    }

    fn parent_of(path: &str) -> &str {
        match path.rfind('/') {
            Some(0) => "/",
            Some(i) => &path[..i],
            None => "/",
        }
    }

    /// Creates a node.
    ///
    /// # Errors
    ///
    /// Fails if the path is invalid, the parent is missing, or the node
    /// already exists.
    pub fn create(
        &mut self,
        path: &str,
        data: Vec<u8>,
        ephemeral_owner: Option<u64>,
    ) -> Result<(), CoordError> {
        Self::validate_path(path)?;
        if path == "/" || self.nodes.contains_key(path) {
            return Err(CoordError::NodeExists(path.to_string()));
        }
        if !self.nodes.contains_key(Self::parent_of(path)) {
            return Err(CoordError::NoParent(path.to_string()));
        }
        self.nodes.insert(
            path.to_string(),
            Znode {
                data,
                version: 0,
                seq_counter: 0,
                ephemeral_owner,
            },
        );
        Ok(())
    }

    /// Creates a node whose name is `prefix` plus a zero-padded counter
    /// maintained by the parent, returning the full path created.
    ///
    /// # Errors
    ///
    /// Fails if the prefix path is invalid or the parent is missing.
    pub fn create_sequential(
        &mut self,
        prefix: &str,
        data: Vec<u8>,
        ephemeral_owner: Option<u64>,
    ) -> Result<String, CoordError> {
        Self::validate_path(prefix)?;
        let parent = Self::parent_of(prefix).to_string();
        let seq = {
            let p = self
                .nodes
                .get_mut(&parent)
                .ok_or_else(|| CoordError::NoParent(prefix.to_string()))?;
            let s = p.seq_counter;
            p.seq_counter += 1;
            s
        };
        let path = format!("{prefix}{seq:010}");
        self.create(&path, data, ephemeral_owner)?;
        Ok(path)
    }

    /// Reads a node.
    pub fn get(&self, path: &str) -> Option<&Znode> {
        self.nodes.get(path)
    }

    /// Whether a node exists.
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// Replaces a node's data, enforcing compare-and-set when
    /// `expected_version` is `Some`.
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::NoNode`] or [`CoordError::BadVersion`].
    pub fn set_data(
        &mut self,
        path: &str,
        data: Vec<u8>,
        expected_version: Option<u64>,
    ) -> Result<u64, CoordError> {
        let node = self
            .nodes
            .get_mut(path)
            .ok_or_else(|| CoordError::NoNode(path.to_string()))?;
        if let Some(expected) = expected_version {
            if node.version != expected {
                return Err(CoordError::BadVersion {
                    path: path.to_string(),
                    expected,
                    actual: node.version,
                });
            }
        }
        node.data = data;
        node.version += 1;
        Ok(node.version)
    }

    /// Deletes a childless node.
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::NoNode`] or [`CoordError::NotEmpty`].
    pub fn delete(&mut self, path: &str) -> Result<(), CoordError> {
        if !self.nodes.contains_key(path) {
            return Err(CoordError::NoNode(path.to_string()));
        }
        if !self.children(path).is_empty() {
            return Err(CoordError::NotEmpty(path.to_string()));
        }
        self.nodes.remove(path);
        Ok(())
    }

    /// Direct children of a node, as full paths in lexicographic order.
    pub fn children(&self, path: &str) -> Vec<String> {
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        self.nodes
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .filter(|(k, _)| !k[prefix.len()..].is_empty() && !k[prefix.len()..].contains('/'))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Deletes every ephemeral node owned by `session` (children first).
    /// Returns the paths removed.
    pub fn expire_session(&mut self, session: u64) -> Vec<String> {
        let mut doomed: Vec<String> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.ephemeral_owner == Some(session))
            .map(|(k, _)| k.clone())
            .collect();
        // Longest paths first so children go before parents.
        doomed.sort_by_key(|p| std::cmp::Reverse(p.len()));
        for p in &doomed {
            self.nodes.remove(p);
        }
        doomed
    }

    /// Total node count, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_requires_parent() {
        let mut t = ZnodeTree::new();
        assert_eq!(
            t.create("/a/b", vec![], None),
            Err(CoordError::NoParent("/a/b".into()))
        );
        t.create("/a", vec![1], None).unwrap();
        t.create("/a/b", vec![2], None).unwrap();
        assert_eq!(t.get("/a/b").unwrap().data, vec![2]);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut t = ZnodeTree::new();
        t.create("/a", vec![], None).unwrap();
        assert_eq!(
            t.create("/a", vec![], None),
            Err(CoordError::NodeExists("/a".into()))
        );
    }

    #[test]
    fn bad_paths_rejected() {
        let mut t = ZnodeTree::new();
        for bad in ["a", "/a/", "//a", "/a//b", ""] {
            assert!(
                matches!(
                    t.create(bad, vec![], None),
                    Err(CoordError::BadPath(_)) | Err(CoordError::NodeExists(_))
                ),
                "path {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn cas_set_data() {
        let mut t = ZnodeTree::new();
        t.create("/x", vec![0], None).unwrap();
        assert_eq!(t.set_data("/x", vec![1], Some(0)), Ok(1));
        assert_eq!(
            t.set_data("/x", vec![2], Some(0)),
            Err(CoordError::BadVersion {
                path: "/x".into(),
                expected: 0,
                actual: 1
            })
        );
        // Unconditional write still bumps version.
        assert_eq!(t.set_data("/x", vec![3], None), Ok(2));
    }

    #[test]
    fn sequential_names_are_ordered_and_unique() {
        let mut t = ZnodeTree::new();
        t.create("/q", vec![], None).unwrap();
        let a = t.create_sequential("/q/n-", vec![], None).unwrap();
        let b = t.create_sequential("/q/n-", vec![], None).unwrap();
        assert!(a < b);
        assert_eq!(a, "/q/n-0000000000");
        assert_eq!(b, "/q/n-0000000001");
        // Deleting a child does not reset the counter.
        t.delete(&a).unwrap();
        let c = t.create_sequential("/q/n-", vec![], None).unwrap();
        assert_eq!(c, "/q/n-0000000002");
    }

    #[test]
    fn delete_requires_empty() {
        let mut t = ZnodeTree::new();
        t.create("/a", vec![], None).unwrap();
        t.create("/a/b", vec![], None).unwrap();
        assert_eq!(t.delete("/a"), Err(CoordError::NotEmpty("/a".into())));
        t.delete("/a/b").unwrap();
        t.delete("/a").unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn children_lists_only_direct_descendants() {
        let mut t = ZnodeTree::new();
        t.create("/a", vec![], None).unwrap();
        t.create("/a/b", vec![], None).unwrap();
        t.create("/a/b/c", vec![], None).unwrap();
        t.create("/a/d", vec![], None).unwrap();
        t.create("/ab", vec![], None).unwrap(); // sibling with shared prefix
        assert_eq!(
            t.children("/a"),
            vec!["/a/b".to_string(), "/a/d".to_string()]
        );
        assert_eq!(t.children("/"), vec!["/a".to_string(), "/ab".to_string()]);
    }

    #[test]
    fn session_expiry_removes_ephemerals_children_first() {
        let mut t = ZnodeTree::new();
        t.create("/e", vec![], Some(5)).unwrap();
        t.create("/e/child", vec![], Some(5)).unwrap();
        t.create("/keep", vec![], Some(6)).unwrap();
        let removed = t.expire_session(5);
        assert_eq!(removed.len(), 2);
        assert!(!t.exists("/e"));
        assert!(t.exists("/keep"));
    }

    #[test]
    fn trees_applying_same_ops_are_identical() {
        let ops = |t: &mut ZnodeTree| {
            t.create("/a", vec![1], None).unwrap();
            t.create_sequential("/a/s-", vec![2], None).unwrap();
            t.set_data("/a", vec![3], None).unwrap();
        };
        let mut t1 = ZnodeTree::new();
        let mut t2 = ZnodeTree::new();
        ops(&mut t1);
        ops(&mut t2);
        assert_eq!(t1, t2, "state machine must be deterministic");
    }
}
