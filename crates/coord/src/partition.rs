//! The globally-consistent virtual-partition table (paper §IV).

use std::fmt;

use crate::cluster::CoordCluster;
use crate::error::CoordError;
use crate::log::{OpResult, WriteOp};

/// A 12-bit FluidMem virtual-partition index.
///
/// Key-value stores without native partition support multiplex VMs through
/// the low 12 bits of the 64-bit external key (paper §IV), so at most
/// 4096 partitions exist per store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(u16);

impl PartitionId {
    /// Number of distinct partitions (2^12).
    pub const COUNT: u16 = 4096;

    /// Creates a partition id.
    ///
    /// # Panics
    ///
    /// Panics if `raw >= 4096`.
    pub fn new(raw: u16) -> Self {
        assert!(raw < Self::COUNT, "partition index must be < 4096");
        PartitionId(raw)
    }

    /// The raw 12-bit index.
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition-{:#05x}", self.0)
    }
}

/// The identity from which a partition index is derived: *"the process
/// PID, a hypervisor ID, and a nonce"* (paper §IV). The nonce comes from
/// the table itself at allocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmIdentity {
    /// PID of the VM's QEMU process on its hypervisor.
    pub pid: u64,
    /// Identifier of the hypervisor host.
    pub hypervisor: u64,
}

/// Client library for the replicated partition table.
///
/// All methods funnel through [`CoordCluster`] proposals, so uniqueness is
/// enforced by the cluster's total order: two monitors racing to claim the
/// same index serialize through the leader, and exactly one create wins.
///
/// # Example
///
/// ```
/// use fluidmem_coord::{CoordCluster, PartitionTable, VmIdentity};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let mut cluster = CoordCluster::new(3, SimClock::new(), SimRng::seed_from_u64(1));
/// PartitionTable::init(&mut cluster)?;
/// let vm = VmIdentity { pid: 4242, hypervisor: 1 };
/// let p = PartitionTable::allocate(&mut cluster, vm)?;
/// assert_eq!(PartitionTable::lookup(&mut cluster, p), Some(vm));
/// PartitionTable::release(&mut cluster, p)?;
/// assert_eq!(PartitionTable::lookup(&mut cluster, p), None);
/// # Ok::<(), fluidmem_coord::CoordError>(())
/// ```
#[derive(Debug)]
pub struct PartitionTable;

const ROOT: &str = "/fluidmem";
const PARTITIONS: &str = "/fluidmem/partitions";
const NONCES: &str = "/fluidmem/nonces";
const ROUTES: &str = "/fluidmem/routes";

impl PartitionTable {
    /// Creates the table's znodes; idempotent.
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors.
    pub fn init(cluster: &mut CoordCluster) -> Result<(), CoordError> {
        for path in [ROOT, PARTITIONS, NONCES, ROUTES] {
            match cluster.propose(WriteOp::Create {
                path: path.into(),
                data: Vec::new(),
                ephemeral_owner: None,
            }) {
                Ok(_) | Err(CoordError::NodeExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Allocates a globally-unique partition for a VM.
    ///
    /// A fresh nonce is drawn from a sequential znode, the candidate index
    /// is a hash of (pid, hypervisor, nonce), and collisions linear-probe
    /// to the next free index. Each claim is one committed create, so two
    /// concurrent allocators can never obtain the same index.
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::PartitionsExhausted`] when all 4096
    /// indices are taken, or with cluster availability errors.
    pub fn allocate(cluster: &mut CoordCluster, vm: VmIdentity) -> Result<PartitionId, CoordError> {
        let nonce = match cluster.propose(WriteOp::CreateSequential {
            prefix: format!("{NONCES}/n-"),
            data: Vec::new(),
            ephemeral_owner: None,
        })? {
            OpResult::Created(path) => path[path.rfind('-').map(|i| i + 1).unwrap_or(0)..]
                .parse::<u64>()
                .expect("sequential suffix is numeric"),
            other => panic!("unexpected result {other:?}"),
        };

        let start = Self::candidate_index(vm, nonce);
        for probe in 0..u32::from(PartitionId::COUNT) {
            let idx = ((u32::from(start) + probe) % u32::from(PartitionId::COUNT)) as u16;
            let record = format!("{}:{}:{}", vm.pid, vm.hypervisor, nonce);
            match cluster.propose(WriteOp::Create {
                path: Self::node_path(PartitionId(idx)),
                data: record.into_bytes(),
                ephemeral_owner: None,
            }) {
                Ok(_) => return Ok(PartitionId(idx)),
                Err(CoordError::NodeExists(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(CoordError::PartitionsExhausted)
    }

    /// Frees a partition (VM shutdown), clearing any store route it
    /// still holds.
    ///
    /// The allocation znode is deleted *first*: that delete is the
    /// ownership check, so a stale releaser racing a reuse of the same
    /// index fails with [`CoordError::NoNode`] before it can clobber the
    /// new owner's route. Only after the delete commits is the route
    /// cleared — a watcher on the allocation znode therefore always sees
    /// `Deleted` (this release) strictly before any `Created` from a
    /// reuse, and a freshly reallocated index never inherits a stale
    /// route.
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::NoNode`] if the partition is not
    /// allocated, or with cluster availability errors.
    pub fn release(cluster: &mut CoordCluster, id: PartitionId) -> Result<(), CoordError> {
        cluster.propose(WriteOp::Delete {
            path: Self::node_path(id),
        })?;
        Self::clear_route(cluster, id)?;
        Ok(())
    }

    /// Publishes which store node serves a partition — the routing flip
    /// of a live migration. The committed write *is* the migration's
    /// linearization point: every observer that reads the table after
    /// this commit routes to `node`.
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors.
    pub fn set_route(
        cluster: &mut CoordCluster,
        id: PartitionId,
        node: u32,
    ) -> Result<(), CoordError> {
        let path = Self::route_path(id);
        let data = node.to_string().into_bytes();
        match cluster.propose(WriteOp::Create {
            path: path.clone(),
            data: data.clone(),
            ephemeral_owner: None,
        }) {
            Ok(_) => Ok(()),
            Err(CoordError::NodeExists(_)) => cluster
                .propose(WriteOp::SetData {
                    path,
                    data,
                    expected_version: None,
                })
                .map(|_| ()),
            Err(e) => Err(e),
        }
    }

    /// The store node a partition routes to, if published.
    pub fn route_of(cluster: &mut CoordCluster, id: PartitionId) -> Option<u32> {
        let node = cluster.read(&Self::route_path(id))?;
        String::from_utf8(node.data).ok()?.parse().ok()
    }

    /// Removes a partition's route; succeeds whether or not one existed.
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors.
    pub fn clear_route(cluster: &mut CoordCluster, id: PartitionId) -> Result<(), CoordError> {
        match cluster.propose(WriteOp::Delete {
            path: Self::route_path(id),
        }) {
            Ok(_) | Err(CoordError::NoNode(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Looks up the identity owning a partition.
    pub fn lookup(cluster: &mut CoordCluster, id: PartitionId) -> Option<VmIdentity> {
        let node = cluster.read(&Self::node_path(id))?;
        let text = String::from_utf8(node.data).ok()?;
        let mut parts = text.split(':');
        Some(VmIdentity {
            pid: parts.next()?.parse().ok()?,
            hypervisor: parts.next()?.parse().ok()?,
        })
    }

    /// Every allocated partition index.
    pub fn allocated(cluster: &mut CoordCluster) -> Vec<PartitionId> {
        cluster
            .children(PARTITIONS)
            .iter()
            .filter_map(|p| p.rsplit('/').next())
            .filter_map(|s| s.parse::<u16>().ok())
            .map(PartitionId)
            .collect()
    }

    fn node_path(id: PartitionId) -> String {
        format!("{PARTITIONS}/{:04}", id.0)
    }

    fn route_path(id: PartitionId) -> String {
        format!("{ROUTES}/{:04}", id.0)
    }

    fn candidate_index(vm: VmIdentity, nonce: u64) -> u16 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [vm.pid, vm.hypervisor, nonce] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        (h % u64::from(PartitionId::COUNT)) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::{SimClock, SimRng};

    fn setup() -> CoordCluster {
        let mut c = CoordCluster::new(3, SimClock::new(), SimRng::seed_from_u64(9));
        PartitionTable::init(&mut c).unwrap();
        c
    }

    #[test]
    fn init_is_idempotent() {
        let mut c = setup();
        PartitionTable::init(&mut c).unwrap();
    }

    #[test]
    fn allocations_are_unique() {
        let mut c = setup();
        let mut seen = std::collections::HashSet::new();
        for pid in 0..50u64 {
            for hyp in 0..2u64 {
                let p = PartitionTable::allocate(
                    &mut c,
                    VmIdentity {
                        pid,
                        hypervisor: hyp,
                    },
                )
                .unwrap();
                assert!(seen.insert(p), "duplicate partition {p}");
            }
        }
        assert_eq!(PartitionTable::allocated(&mut c).len(), 100);
    }

    #[test]
    fn same_vm_twice_gets_two_partitions() {
        // The nonce makes re-registration (VM restart with same PID) safe.
        let mut c = setup();
        let vm = VmIdentity {
            pid: 7,
            hypervisor: 7,
        };
        let a = PartitionTable::allocate(&mut c, vm).unwrap();
        let b = PartitionTable::allocate(&mut c, vm).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn release_then_lookup_is_none() {
        let mut c = setup();
        let vm = VmIdentity {
            pid: 1,
            hypervisor: 2,
        };
        let p = PartitionTable::allocate(&mut c, vm).unwrap();
        assert_eq!(PartitionTable::lookup(&mut c, p), Some(vm));
        PartitionTable::release(&mut c, p).unwrap();
        assert_eq!(PartitionTable::lookup(&mut c, p), None);
        assert!(PartitionTable::release(&mut c, p).is_err());
    }

    #[test]
    fn allocation_survives_leader_failover() {
        let mut c = setup();
        let p1 = PartitionTable::allocate(
            &mut c,
            VmIdentity {
                pid: 10,
                hypervisor: 1,
            },
        )
        .unwrap();
        let old = c.leader().unwrap();
        c.kill(old);
        c.elect().unwrap();
        let p2 = PartitionTable::allocate(
            &mut c,
            VmIdentity {
                pid: 11,
                hypervisor: 1,
            },
        )
        .unwrap();
        assert_ne!(p1, p2);
        assert!(PartitionTable::lookup(&mut c, p1).is_some());
    }

    #[test]
    #[should_panic(expected = "must be < 4096")]
    fn oversized_partition_id_rejected() {
        PartitionId::new(4096);
    }

    #[test]
    fn release_clears_the_partition_route() {
        // Regression: release used to delete only the allocation znode,
        // leaving /fluidmem/routes/NNNN behind — a later reuse of the
        // index inherited a dangling route to a store node that may no
        // longer hold (or even be) anything.
        let mut c = setup();
        let vm = VmIdentity {
            pid: 3,
            hypervisor: 1,
        };
        let p = PartitionTable::allocate(&mut c, vm).unwrap();
        PartitionTable::set_route(&mut c, p, 2).unwrap();
        assert_eq!(PartitionTable::route_of(&mut c, p), Some(2));
        PartitionTable::release(&mut c, p).unwrap();
        assert_eq!(
            PartitionTable::route_of(&mut c, p),
            None,
            "a released partition must not keep a stale route"
        );
        // A reuse of the same index starts route-less.
        c.propose(WriteOp::Create {
            path: PartitionTable::node_path(p),
            data: b"9:9:9".to_vec(),
            ephemeral_owner: None,
        })
        .unwrap();
        assert_eq!(PartitionTable::route_of(&mut c, p), None);
    }

    #[test]
    fn stale_release_cannot_clobber_a_reused_index() {
        // Regression for the delete/clear ordering: release performs the
        // allocation delete (the ownership check) *before* clearing the
        // route. A stale releaser retrying a release that already
        // happened must fail with NoNode and must NOT clear a route
        // published since — clearing first would have wiped the new
        // owner's routing with no ownership check at all.
        let mut c = setup();
        let p = PartitionTable::allocate(
            &mut c,
            VmIdentity {
                pid: 1,
                hypervisor: 1,
            },
        )
        .unwrap();
        PartitionTable::release(&mut c, p).unwrap();
        // A new owner is reallocating the index and has already
        // published where the partition's pages now live.
        PartitionTable::set_route(&mut c, p, 5).unwrap();
        // The original releaser's stale retry arrives.
        let stale = PartitionTable::release(&mut c, p);
        assert!(
            matches!(stale, Err(CoordError::NoNode(_))),
            "stale release must fail the ownership delete, got {stale:?}"
        );
        assert_eq!(
            PartitionTable::route_of(&mut c, p),
            Some(5),
            "the failed release must not have touched the route"
        );
    }

    #[test]
    fn watcher_disambiguates_release_from_reuse() {
        // A watcher holding a one-shot watch on the allocation znode
        // sees Deleted (the release) strictly before the Created of a
        // reuse, so it can retire per-partition state before the new
        // owner's events arrive.
        let mut c = setup();
        let p = PartitionTable::allocate(
            &mut c,
            VmIdentity {
                pid: 2,
                hypervisor: 2,
            },
        )
        .unwrap();
        let session = c.create_session();
        c.watch(session, &PartitionTable::node_path(p)).unwrap();
        PartitionTable::release(&mut c, p).unwrap();
        c.watch(session, &PartitionTable::node_path(p)).unwrap();
        c.propose(WriteOp::Create {
            path: PartitionTable::node_path(p),
            data: b"4:4:4".to_vec(),
            ephemeral_owner: None,
        })
        .unwrap();
        let events = c.take_watch_events(session);
        let kinds: Vec<_> = events
            .iter()
            .filter(|e| e.path == PartitionTable::node_path(p))
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                crate::watch::WatchKind::Deleted,
                crate::watch::WatchKind::Created
            ],
            "release must be observable before the reuse"
        );
    }

    #[test]
    fn probing_resolves_hash_collisions() {
        // Force collisions by allocating enough VMs that birthday effects
        // guarantee at least one hash collision; uniqueness must hold.
        let mut c = setup();
        let mut seen = std::collections::HashSet::new();
        for pid in 0..200u64 {
            let p = PartitionTable::allocate(&mut c, VmIdentity { pid, hypervisor: 0 }).unwrap();
            assert!(seen.insert(p.raw()));
        }
    }
}
