//! A quorum-replicated coordination service — the reproduction's
//! ZooKeeper substitute.
//!
//! The paper's §IV requires global uniqueness for FluidMem's 12-bit
//! "virtual partitions": *"the index is created using the process PID, a
//! hypervisor ID, and a nonce, where global uniqueness is ensured by a
//! replicated and globally consistent table stored in Zookeeper."*
//!
//! This crate implements the same guarantee from scratch:
//!
//! * a hierarchical [`ZnodeTree`] with versioned compare-and-set writes,
//!   sequential nodes, and ephemeral nodes tied to sessions;
//! * a leader-based, majority-quorum replicated log ([`CoordCluster`])
//!   in the style of ZAB: writes commit only after a majority of replicas
//!   append them, leader failure triggers election of the replica with the
//!   longest log among the surviving majority, and committed entries are
//!   never lost while a majority survives;
//! * the [`PartitionTable`] built on top, which allocates globally unique
//!   partition indices to (PID, hypervisor, nonce) triples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod error;
mod log;
mod membership;
mod partition;
mod stores;
mod watch;
mod znode;

pub use cluster::{CoordCluster, ReplicaId, SessionId};
pub use error::CoordError;
pub use log::{LogEntry, OpResult, WriteOp};
pub use membership::{HostDirectory, VmLease};
pub use partition::{PartitionId, PartitionTable, VmIdentity};
pub use stores::StoreDirectory;
pub use watch::{WatchEvent, WatchKind};
pub use znode::{Znode, ZnodeTree};
