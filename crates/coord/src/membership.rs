//! Host-side VM membership: lease znodes and watch-driven directories.
//!
//! A host agent running N VMs against one shared store (the
//! `fluidmem-host` crate) registers each VM under its own host znode as
//! an **ephemeral sequential lease** carrying the VM's PID and allocated
//! [`PartitionId`]. Ephemerality ties the leases to the host's session:
//! if the host agent dies, its session expiry removes every lease, so a
//! surviving observer reading the directory sees the VMs gone.
//!
//! Watch semantics follow ZooKeeper (and this repo's [`CoordCluster`]):
//!
//! * a watch on the VMs *directory* fires `ChildrenChanged` when a
//!   sequential lease is created (a VM joined);
//! * a watch on an individual *lease* fires `Deleted` when the lease is
//!   explicitly deleted (a VM left gracefully);
//! * **session expiry removes ephemerals without firing watches** — an
//!   observer cannot rely on a watch to learn a host crashed and must
//!   re-read the directory, exactly as with real ZooKeeper ephemerals
//!   racing session teardown. [`HostDirectory::live_vms`] is that
//!   re-read.

use crate::cluster::{CoordCluster, SessionId};
use crate::error::CoordError;
use crate::log::{OpResult, WriteOp};
use crate::partition::PartitionId;
use crate::watch::WatchEvent;

const ROOT: &str = "/fluidmem";
const HOSTS: &str = "/fluidmem/hosts";

/// A live VM lease parsed out of a host's membership directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmLease {
    /// The lease znode's full path (`…/vms/lease-N`).
    pub path: String,
    /// PID of the VM's process on the host.
    pub pid: u64,
    /// The store partition the VM's keys live under.
    pub partition: PartitionId,
}

/// A host agent's handle on its own membership directory
/// (`/fluidmem/hosts/<id>/vms`).
#[derive(Debug)]
pub struct HostDirectory {
    host: u64,
    session: SessionId,
}

impl HostDirectory {
    /// Creates the host's znodes (idempotent) and opens the session its
    /// VM leases will be ephemeral under.
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors.
    pub fn register(cluster: &mut CoordCluster, host: u64) -> Result<Self, CoordError> {
        let dir = HostDirectory {
            host,
            session: cluster.create_session(),
        };
        for path in [
            ROOT.to_string(),
            HOSTS.to_string(),
            format!("{HOSTS}/{host}"),
            dir.vms_path(),
        ] {
            match cluster.propose(WriteOp::Create {
                path,
                data: Vec::new(),
                ephemeral_owner: None,
            }) {
                Ok(_) | Err(CoordError::NodeExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(dir)
    }

    /// The host id this directory belongs to.
    pub fn host(&self) -> u64 {
        self.host
    }

    /// The session the VM leases are ephemeral under.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The membership directory's path.
    pub fn vms_path(&self) -> String {
        format!("{HOSTS}/{}/vms", self.host)
    }

    /// Registers a VM: creates an ephemeral sequential lease carrying
    /// `pid:partition`, and returns the lease path. The sequential
    /// create fires `ChildrenChanged` on any directory watch.
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors.
    pub fn register_vm(
        &self,
        cluster: &mut CoordCluster,
        pid: u64,
        partition: PartitionId,
    ) -> Result<String, CoordError> {
        match cluster.propose(WriteOp::CreateSequential {
            prefix: format!("{}/lease-", self.vms_path()),
            data: format!("{pid}:{}", partition.raw()).into_bytes(),
            ephemeral_owner: Some(self.session.0),
        })? {
            OpResult::Created(path) => Ok(path),
            other => panic!("unexpected result {other:?}"),
        }
    }

    /// Gracefully deregisters a VM by deleting its lease — an explicit
    /// delete, *not* session expiry, so lease watches fire `Deleted`.
    ///
    /// # Errors
    ///
    /// Fails with [`CoordError::NoNode`] if the lease is already gone,
    /// or with cluster availability errors.
    pub fn deregister_vm(&self, cluster: &mut CoordCluster, lease: &str) -> Result<(), CoordError> {
        cluster
            .propose(WriteOp::Delete { path: lease.into() })
            .map(|_| ())
    }

    /// Reads and parses every live lease, in lease order (the order VMs
    /// registered, since sequential suffixes are monotone).
    pub fn live_vms(&self, cluster: &mut CoordCluster) -> Vec<VmLease> {
        let mut paths = cluster.children(&self.vms_path());
        paths.sort();
        paths
            .into_iter()
            .filter_map(|path| {
                let node = cluster.read(&path)?;
                let text = String::from_utf8(node.data).ok()?;
                let (pid, partition) = text.split_once(':')?;
                Some(VmLease {
                    path,
                    pid: pid.parse().ok()?,
                    partition: PartitionId::new(partition.parse().ok()?),
                })
            })
            .collect()
    }

    /// Arms one-shot watches for membership changes: the directory (VM
    /// joins) and every current lease (graceful VM departures). Call
    /// again after draining events — ZooKeeper watches are one-shot.
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors.
    pub fn watch_membership(&self, cluster: &mut CoordCluster) -> Result<(), CoordError> {
        cluster.watch(self.session, &self.vms_path())?;
        let mut leases = cluster.children(&self.vms_path());
        leases.sort();
        for lease in leases {
            cluster.watch(self.session, &lease)?;
        }
        Ok(())
    }

    /// Drains membership watch events fired since the last call.
    pub fn membership_events(&self, cluster: &mut CoordCluster) -> Vec<WatchEvent> {
        cluster.take_watch_events(self.session)
    }

    /// Closes the host's session, expiring every remaining lease (the
    /// host-crash path; no watches fire — see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates cluster availability errors.
    pub fn close(self, cluster: &mut CoordCluster) -> Result<(), CoordError> {
        cluster.close_session(self.session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watch::WatchKind;
    use fluidmem_sim::{SimClock, SimRng};

    fn cluster() -> CoordCluster {
        CoordCluster::new(3, SimClock::new(), SimRng::seed_from_u64(1))
    }

    #[test]
    fn register_list_deregister_roundtrip() {
        let mut c = cluster();
        let dir = HostDirectory::register(&mut c, 7).unwrap();
        let a = dir.register_vm(&mut c, 100, PartitionId::new(1)).unwrap();
        let b = dir.register_vm(&mut c, 200, PartitionId::new(2)).unwrap();
        let vms = dir.live_vms(&mut c);
        assert_eq!(vms.len(), 2);
        assert_eq!(vms[0].path, a);
        assert_eq!(vms[0].pid, 100);
        assert_eq!(vms[0].partition, PartitionId::new(1));
        assert_eq!(vms[1].pid, 200);

        dir.deregister_vm(&mut c, &a).unwrap();
        let vms = dir.live_vms(&mut c);
        assert_eq!(vms.len(), 1);
        assert_eq!(vms[0].path, b);
    }

    #[test]
    fn joins_and_graceful_leaves_fire_watches() {
        let mut c = cluster();
        let dir = HostDirectory::register(&mut c, 1).unwrap();
        dir.watch_membership(&mut c).unwrap();

        let lease = dir.register_vm(&mut c, 42, PartitionId::new(3)).unwrap();
        let events = dir.membership_events(&mut c);
        assert!(
            events
                .iter()
                .any(|e| e.path == dir.vms_path() && e.kind == WatchKind::ChildrenChanged),
            "{events:?}"
        );

        dir.watch_membership(&mut c).unwrap();
        dir.deregister_vm(&mut c, &lease).unwrap();
        let events = dir.membership_events(&mut c);
        assert!(
            events
                .iter()
                .any(|e| e.path == lease && e.kind == WatchKind::Deleted),
            "{events:?}"
        );
    }

    #[test]
    fn session_expiry_reaps_leases_without_watches() {
        let mut c = cluster();
        let dir = HostDirectory::register(&mut c, 1).unwrap();
        dir.register_vm(&mut c, 1, PartitionId::new(1)).unwrap();
        dir.register_vm(&mut c, 2, PartitionId::new(2)).unwrap();

        // A second observer (e.g. a peer host) watches the directory.
        let observer = HostDirectory {
            host: 1,
            session: c.create_session(),
        };
        observer.watch_membership(&mut c).unwrap();

        dir.close(&mut c).unwrap();
        // The ephemerals are gone…
        assert!(observer.live_vms(&mut c).is_empty());
        // …but no watch fired: expiry is watch-invisible, the observer
        // must re-read (which live_vms above just did).
        assert!(observer.membership_events(&mut c).is_empty());
    }

    #[test]
    fn two_hosts_keep_separate_directories() {
        let mut c = cluster();
        let h1 = HostDirectory::register(&mut c, 1).unwrap();
        let h2 = HostDirectory::register(&mut c, 2).unwrap();
        h1.register_vm(&mut c, 10, PartitionId::new(1)).unwrap();
        h2.register_vm(&mut c, 20, PartitionId::new(2)).unwrap();
        assert_eq!(h1.live_vms(&mut c).len(), 1);
        assert_eq!(h2.live_vms(&mut c).len(), 1);
        assert_eq!(h1.live_vms(&mut c)[0].pid, 10);
        assert_eq!(h2.live_vms(&mut c)[0].pid, 20);
    }
}
