//! Per-store operation counters.
//!
//! Store backends increment [`StoreCounters`] — shared telemetry
//! handles — and [`StoreStats`] is the point-in-time snapshot those
//! handles produce. Registering a store's counters
//! ([`KeyValueStore::instrument`](crate::KeyValueStore::instrument))
//! exports the same handles under
//! [`consts::STORE_OPS`](fluidmem_telemetry::consts::STORE_OPS), so the
//! stats surface and the metrics endpoint cannot drift apart.

use fluidmem_telemetry::{consts, Counter, Histogram, Registry};

/// A point-in-time snapshot of a store backend's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful reads.
    pub gets: u64,
    /// Reads that missed (not found / evicted).
    pub get_misses: u64,
    /// Single-object writes.
    pub puts: u64,
    /// Objects written through batch (`multiWrite`) operations.
    pub batched_puts: u64,
    /// Batch operations issued.
    pub multi_writes: u64,
    /// Objects removed by `delete`.
    pub deletes: u64,
    /// Objects dropped by cache eviction (memcached) — data loss.
    pub evictions: u64,
    /// Log-cleaner passes (RAMCloud).
    pub cleanings: u64,
    /// Crash-recovery replays (RAMCloud).
    pub recoveries: u64,
    /// Faults injected by a wrapping [`FaultInjectingStore`]
    /// (drops, timeouts, duplicates, slow replicas, transient errors).
    pub faults_injected: u64,
    /// Operations that returned [`KvError::Timeout`](crate::KvError).
    pub timeouts: u64,
    /// Operations that returned [`KvError::Unavailable`](crate::KvError).
    pub unavailables: u64,
    /// Retry attempts issued through a [`RetryPolicy`](crate::RetryPolicy)
    /// driving this store.
    pub retries: u64,
    /// Reads or writes redirected to another replica after a fault
    /// ([`ReplicatedStore`](crate::ReplicatedStore)).
    pub failovers: u64,
}

impl StoreStats {
    /// Total objects written by any means.
    pub fn total_puts(&self) -> u64 {
        self.puts + self.batched_puts
    }

    /// Total operations that failed with a retryable error.
    pub fn retryable_failures(&self) -> u64 {
        self.timeouts + self.unavailables
    }
}

macro_rules! store_counters {
    ($(($field:ident, $op:literal, $doc:literal)),+ $(,)?) => {
        /// A store backend's live counter handles (see the module docs),
        /// plus client-observed latency histograms for the three
        /// round-trip operations.
        #[derive(Debug, Clone, Default)]
        pub struct StoreCounters {
            $(#[doc = $doc] pub $field: Counter,)+
            /// Full get round-trip latency (issue → bottom half done).
            pub get_latency: Histogram,
            /// Single-object put round-trip latency.
            pub put_latency: Histogram,
            /// Batch multi-write round-trip latency.
            pub multi_write_latency: Histogram,
        }

        impl StoreCounters {
            /// Fresh detached counters (not exported anywhere).
            pub fn new() -> Self {
                Self::default()
            }

            /// Registers every counter in `registry` under
            /// [`consts::STORE_OPS`] and every latency histogram under
            /// [`consts::STORE_OP_LATENCY_US`], labeled by `store` and
            /// the operation. Accumulated values carry over: the
            /// registry adopts the live handles.
            pub fn register(&self, registry: &Registry, store: &str) {
                $(registry.adopt_counter(
                    consts::STORE_OPS,
                    &[(consts::LABEL_STORE, store), (consts::LABEL_OP, $op)],
                    &self.$field,
                );)+
                registry.adopt_histogram(
                    consts::STORE_OP_LATENCY_US,
                    &[(consts::LABEL_STORE, store), (consts::LABEL_OP, "get")],
                    &self.get_latency,
                );
                registry.adopt_histogram(
                    consts::STORE_OP_LATENCY_US,
                    &[(consts::LABEL_STORE, store), (consts::LABEL_OP, "put")],
                    &self.put_latency,
                );
                registry.adopt_histogram(
                    consts::STORE_OP_LATENCY_US,
                    &[(consts::LABEL_STORE, store), (consts::LABEL_OP, "multi_write")],
                    &self.multi_write_latency,
                );
            }

            /// A point-in-time snapshot of every counter.
            pub fn snapshot(&self) -> StoreStats {
                StoreStats {
                    $($field: self.$field.get(),)+
                }
            }
        }
    };
}

store_counters! {
    (gets, "get", "Successful reads."),
    (get_misses, "get_miss", "Reads that missed (not found / evicted)."),
    (puts, "put", "Single-object writes."),
    (batched_puts, "batched_put", "Objects written through batch operations."),
    (multi_writes, "multi_write", "Batch operations issued."),
    (deletes, "delete", "Objects removed by `delete`."),
    (evictions, "eviction", "Objects dropped by cache eviction — data loss."),
    (cleanings, "cleaning", "Log-cleaner passes (RAMCloud)."),
    (recoveries, "recovery", "Crash-recovery replays (RAMCloud)."),
    (faults_injected, "fault_injected", "Faults injected by a fault-injecting wrapper."),
    (timeouts, "timeout", "Operations that returned a timeout."),
    (unavailables, "unavailable", "Operations refused as unavailable."),
    (retries, "retry", "Retry attempts issued by a retry policy."),
    (failovers, "failover", "Operations redirected to another replica."),
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::SimDuration;

    #[test]
    fn total_puts_sums_both_paths() {
        let s = StoreStats {
            puts: 3,
            batched_puts: 7,
            ..Default::default()
        };
        assert_eq!(s.total_puts(), 10);
    }

    #[test]
    fn snapshot_reads_live_handles() {
        let c = StoreCounters::new();
        c.gets.add(5);
        c.multi_writes.inc();
        let s = c.snapshot();
        assert_eq!(s.gets, 5);
        assert_eq!(s.multi_writes, 1);
        assert_eq!(s.puts, 0);
    }

    #[test]
    fn registered_counters_are_the_same_handles() {
        let c = StoreCounters::new();
        c.puts.add(2);
        c.get_latency.observe(SimDuration::from_micros(12));
        let reg = Registry::new();
        c.register(&reg, "dram");
        let puts = reg.counter(
            consts::STORE_OPS,
            &[(consts::LABEL_STORE, "dram"), (consts::LABEL_OP, "put")],
        );
        assert_eq!(puts.get(), 2);
        c.puts.inc();
        assert_eq!(puts.get(), 3);
        let lat = reg.histogram(
            consts::STORE_OP_LATENCY_US,
            &[(consts::LABEL_STORE, "dram"), (consts::LABEL_OP, "get")],
        );
        assert_eq!(lat.snapshot().count, 1);
    }
}
