//! Per-store operation counters.

/// Counters maintained by every store backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful reads.
    pub gets: u64,
    /// Reads that missed (not found / evicted).
    pub get_misses: u64,
    /// Single-object writes.
    pub puts: u64,
    /// Objects written through batch (`multiWrite`) operations.
    pub batched_puts: u64,
    /// Batch operations issued.
    pub multi_writes: u64,
    /// Objects removed by `delete`.
    pub deletes: u64,
    /// Objects dropped by cache eviction (memcached) — data loss.
    pub evictions: u64,
    /// Log-cleaner passes (RAMCloud).
    pub cleanings: u64,
    /// Crash-recovery replays (RAMCloud).
    pub recoveries: u64,
    /// Faults injected by a wrapping [`FaultInjectingStore`]
    /// (drops, timeouts, duplicates, slow replicas, transient errors).
    pub faults_injected: u64,
    /// Operations that returned [`KvError::Timeout`](crate::KvError).
    pub timeouts: u64,
    /// Operations that returned [`KvError::Unavailable`](crate::KvError).
    pub unavailables: u64,
    /// Retry attempts issued through a [`RetryPolicy`](crate::RetryPolicy)
    /// driving this store.
    pub retries: u64,
    /// Reads or writes redirected to another replica after a fault
    /// ([`ReplicatedStore`](crate::ReplicatedStore)).
    pub failovers: u64,
}

impl StoreStats {
    /// Total objects written by any means.
    pub fn total_puts(&self) -> u64 {
        self.puts + self.batched_puts
    }

    /// Total operations that failed with a retryable error.
    pub fn retryable_failures(&self) -> u64 {
        self.timeouts + self.unavailables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_puts_sums_both_paths() {
        let s = StoreStats {
            puts: 3,
            batched_puts: 7,
            ..Default::default()
        };
        assert_eq!(s.total_puts(), 10);
    }
}
