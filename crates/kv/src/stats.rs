//! Per-store operation counters.

/// Counters maintained by every store backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful reads.
    pub gets: u64,
    /// Reads that missed (not found / evicted).
    pub get_misses: u64,
    /// Single-object writes.
    pub puts: u64,
    /// Objects written through batch (`multiWrite`) operations.
    pub batched_puts: u64,
    /// Batch operations issued.
    pub multi_writes: u64,
    /// Objects removed by `delete`.
    pub deletes: u64,
    /// Objects dropped by cache eviction (memcached) — data loss.
    pub evictions: u64,
    /// Log-cleaner passes (RAMCloud).
    pub cleanings: u64,
    /// Crash-recovery replays (RAMCloud).
    pub recoveries: u64,
}

impl StoreStats {
    /// Total objects written by any means.
    pub fn total_puts(&self) -> u64 {
        self.puts + self.batched_puts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_puts_sums_both_paths() {
        let s = StoreStats {
            puts: 3,
            batched_puts: 7,
            ..Default::default()
        };
        assert_eq!(s.total_puts(), 10);
    }
}
