//! A RAMCloud-like log-structured store.

use std::collections::HashMap;

use fluidmem_coord::PartitionId;
use fluidmem_mem::{PageContents, PAGE_SIZE};
use fluidmem_sim::{SimClock, SimRng};

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::{StoreCounters, StoreStats};
use crate::store::KeyValueStore;
use crate::transport::TransportModel;
use fluidmem_telemetry::Registry;

/// Logical bytes one page record occupies in the log (payload + header).
const RECORD_BYTES: usize = PAGE_SIZE + 100;
/// RAMCloud's segment size (the log is divided into at least
/// [`MIN_SEGMENTS`] segments even for small stores, so the cleaner always
/// has sealed segments to work with).
const SEGMENT_BYTES: usize = 8 * 1024 * 1024;
/// Minimum number of segments the log is divided into.
const MIN_SEGMENTS: usize = 16;

#[derive(Debug)]
struct LogRecord {
    key: ExternalKey,
    value: PageContents,
    live: bool,
}

#[derive(Debug, Default)]
struct Segment {
    records: Vec<LogRecord>,
    live: usize,
}

impl Segment {
    fn is_sealed_at(&self, records_per_segment: usize) -> bool {
        self.records.len() >= records_per_segment
    }

    fn utilization(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.live as f64 / self.records.len() as f64
    }
}

/// A log-structured, DRAM-resident store in the style of RAMCloud
/// (Ousterhout et al.): an append-only segmented log, a hash-table index,
/// a segment cleaner that compacts dead space, and batched
/// `multiRead`/`multiWrite` operations — the store the paper gives 25 GB
/// of memory on a separate server (§VI-A).
///
/// Pages are pinned in the store's DRAM (RAMCloud "pins memory to ensure
/// that it is not paged out", §V-A); when the log is full the cleaner
/// reclaims dead space, and if nothing is dead the store refuses writes
/// rather than dropping data.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::{ExternalKey, KeyValueStore, RamCloudStore};
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let mut store = RamCloudStore::new(64 << 20, SimClock::new(), SimRng::seed_from_u64(1));
/// let key = ExternalKey::new(Vpn::new(0x10), PartitionId::new(0));
/// store.put(key, PageContents::Token(7))?;
/// assert_eq!(store.get(key)?, PageContents::Token(7));
/// # Ok::<(), fluidmem_kv::KvError>(())
/// ```
#[derive(Debug)]
pub struct RamCloudStore {
    segments: Vec<Segment>,
    head: usize,
    index: HashMap<u64, (u32, u32)>,
    capacity_records: usize,
    records_per_segment: usize,
    live_records: usize,
    total_records: usize,
    transport: TransportModel,
    clock: SimClock,
    rng: SimRng,
    stats: StoreCounters,
}

impl RamCloudStore {
    /// Creates a store with `capacity_bytes` of log space, reached over
    /// InfiniBand verbs.
    pub fn new(capacity_bytes: usize, clock: SimClock, rng: SimRng) -> Self {
        Self::with_transport(
            capacity_bytes,
            TransportModel::infiniband_verbs(),
            clock,
            rng,
        )
    }

    /// Creates a store with an explicit transport model.
    pub fn with_transport(
        capacity_bytes: usize,
        transport: TransportModel,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        let capacity_records = (capacity_bytes / RECORD_BYTES).max(1);
        let records_per_segment = (SEGMENT_BYTES / RECORD_BYTES)
            .min(capacity_records.div_ceil(MIN_SEGMENTS))
            .max(8);
        RamCloudStore {
            segments: vec![Segment::default()],
            head: 0,
            index: HashMap::new(),
            capacity_records,
            records_per_segment,
            live_records: 0,
            total_records: 0,
            transport,
            clock,
            rng,
            stats: StoreCounters::new(),
        }
    }

    /// Simulates the server crashing and recovering: the DRAM hash-table
    /// index is lost and rebuilt by replaying the (durable, replicated)
    /// log — the "fast crash recovery" design of Ongaro et al. (SOSP'11,
    /// the paper's citation \[33\]). Charges recovery time proportional to
    /// the log size; later records win replay conflicts, so the recovered
    /// index is exactly the pre-crash one.
    pub fn crash_and_recover(&mut self) -> fluidmem_sim::SimDuration {
        self.stats.recoveries.inc();
        let t0 = self.clock.now();
        self.index.clear();
        // Replay: ~0.6 µs per log record (hash insert + checksum), spread
        // over the recovery masters; single-server model charges it all.
        let per_record = fluidmem_sim::SimDuration::from_nanos(600);
        let mut replayed = 0u64;
        for (si, seg) in self.segments.iter().enumerate() {
            for (ri, rec) in seg.records.iter().enumerate() {
                replayed += 1;
                if rec.live {
                    self.index.insert(rec.key.raw(), (si as u32, ri as u32));
                }
            }
        }
        self.clock.advance(per_record * replayed);
        self.clock.now() - t0
    }

    /// Fraction of the log occupied by live records.
    pub fn log_utilization(&self) -> f64 {
        if self.total_records == 0 {
            return 0.0;
        }
        self.live_records as f64 / self.total_records as f64
    }

    /// Number of log segments (including the open head).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn kill_existing(&mut self, key: ExternalKey) {
        if let Some((seg, idx)) = self.index.remove(&key.raw()) {
            let segment = &mut self.segments[seg as usize];
            let rec = &mut segment.records[idx as usize];
            debug_assert!(rec.live);
            rec.live = false;
            segment.live -= 1;
            self.live_records -= 1;
        }
    }

    /// Appends a record, running the cleaner if the log is full.
    fn append(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        if self.total_records >= self.capacity_records {
            self.clean();
            if self.total_records >= self.capacity_records {
                return Err(KvError::OutOfCapacity);
            }
        }
        if self.segments[self.head].is_sealed_at(self.records_per_segment) {
            self.segments.push(Segment::default());
            self.head = self.segments.len() - 1;
        }
        let seg = self.head as u32;
        let idx = self.segments[self.head].records.len() as u32;
        self.segments[self.head].records.push(LogRecord {
            key,
            value,
            live: true,
        });
        self.segments[self.head].live += 1;
        self.index.insert(key.raw(), (seg, idx));
        self.live_records += 1;
        self.total_records += 1;
        Ok(())
    }

    /// The log cleaner: compacts sealed segments with the most dead
    /// space by relocating their live records to fresh segments. Runs on
    /// the server's spare cores, so it charges no monitor time.
    fn clean(&mut self) {
        self.stats.cleanings.inc();
        // Collect live records from sealed segments with < 90% utilization.
        let mut survivors: Vec<(ExternalKey, PageContents)> = Vec::new();
        let mut freed = 0usize;
        let old_segments = std::mem::take(&mut self.segments);
        let mut kept: Vec<Segment> = Vec::new();
        for (i, seg) in old_segments.into_iter().enumerate() {
            let sealed = seg.records.len() >= self.records_per_segment;
            if sealed && seg.utilization() < 0.9 {
                freed += seg.records.len();
                for rec in seg.records {
                    if rec.live {
                        survivors.push((rec.key, rec.value));
                    }
                }
            } else {
                kept.push(seg);
                let _ = i;
            }
        }
        self.segments = if kept.is_empty() {
            vec![Segment::default()]
        } else {
            kept
        };
        self.head = self.segments.len() - 1;
        if self.segments[self.head].is_sealed_at(self.records_per_segment) {
            self.segments.push(Segment::default());
            self.head += 1;
        }
        self.total_records -= freed;
        self.live_records -= survivors.len();
        // Rebuild the index for everything (survivor relocation moves
        // records; keeping it simple and correct).
        self.index.clear();
        for (si, seg) in self.segments.iter().enumerate() {
            for (ri, rec) in seg.records.iter().enumerate() {
                if rec.live {
                    self.index.insert(rec.key.raw(), (si as u32, ri as u32));
                }
            }
        }
        for (key, value) in survivors {
            // Capacity now has room for every survivor by construction.
            self.append(key, value).expect("cleaner made room");
        }
    }
}

impl KeyValueStore for RamCloudStore {
    fn name(&self) -> &'static str {
        "ramcloud"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        let top = self.transport.sample_top_half(&mut self.rng);
        let flight = self.transport.sample_flight(&mut self.rng, RECORD_BYTES);
        let bottom = self.transport.sample_bottom_half(&mut self.rng);
        self.clock.advance(top + flight + bottom);
        self.kill_existing(key);
        self.append(key, value)?;
        self.stats.puts.inc();
        self.stats.put_latency.observe(top + flight + bottom);
        Ok(())
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        let top = self.transport.sample_top_half(&mut self.rng);
        let flight = self.transport.sample_flight(&mut self.rng, 64);
        self.clock.advance(top + flight);
        let existed = self.index.contains_key(&key.raw());
        self.kill_existing(key);
        if existed {
            self.stats.deletes.inc();
        }
        existed
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        let issued_at = self.clock.now();
        let top = self.transport.sample_top_half(&mut self.rng);
        self.clock.advance(top);
        let flight = self.transport.sample_flight(&mut self.rng, RECORD_BYTES);
        let result = match self.index.get(&key.raw()) {
            Some(&(seg, idx)) => Ok(self.segments[seg as usize].records[idx as usize]
                .value
                .clone()),
            None => Err(KvError::NotFound(key)),
        };
        PendingGet {
            key,
            result,
            issued_at,
            completes_at: self.clock.now() + flight,
        }
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        self.clock.advance_to(pending.completes_at);
        let bottom = self.transport.sample_bottom_half(&mut self.rng);
        self.clock.advance(bottom);
        self.stats
            .get_latency
            .observe(self.clock.now() - pending.issued_at);
        match pending.result {
            Ok(v) => {
                self.stats.gets.inc();
                Ok(v)
            }
            Err(e) => {
                self.stats.get_misses.inc();
                Err(e)
            }
        }
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        let count = batch.len();
        let issued_at = self.clock.now();
        let top = self.transport.sample_top_half(&mut self.rng);
        self.clock.advance(top);
        let flight = self
            .transport
            .sample_batch_flight(&mut self.rng, count, count * RECORD_BYTES);
        let mut keys = Vec::with_capacity(count);
        for (key, value) in batch {
            self.kill_existing(key);
            self.append(key, value)?;
            keys.push(key);
        }
        self.stats.batched_puts.add(count as u64);
        self.stats.multi_writes.inc();
        Ok(PendingWrite {
            keys,
            issued_at,
            completes_at: self.clock.now() + flight,
        })
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        self.clock.advance_to(pending.completes_at);
        let bottom = self.transport.sample_bottom_half(&mut self.rng);
        self.clock.advance(bottom);
        self.stats
            .multi_write_latency
            .observe(self.clock.now() - pending.issued_at);
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        let doomed: Vec<u64> = self
            .index
            .keys()
            .copied()
            .filter(|&raw| raw & 0xFFF == u64::from(partition.raw()))
            .collect();
        let n = doomed.len() as u64;
        for raw in doomed {
            if let Some((seg, idx)) = self.index.remove(&raw) {
                let segment = &mut self.segments[seg as usize];
                segment.records[idx as usize].live = false;
                segment.live -= 1;
                self.live_records -= 1;
            }
        }
        self.stats.deletes.add(n);
        n
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.index.contains_key(&key.raw())
    }

    fn partition_keys(&self, partition: PartitionId) -> Vec<ExternalKey> {
        let mut keys: Vec<ExternalKey> = self
            .index
            .keys()
            .filter(|&&raw| raw & 0xFFF == u64::from(partition.raw()))
            .map(|&raw| ExternalKey::from_raw(raw))
            .collect();
        keys.sort_unstable();
        keys
    }

    fn peek(&self, key: ExternalKey) -> Option<PageContents> {
        let &(seg, idx) = self.index.get(&key.raw())?;
        Some(
            self.segments[seg as usize].records[idx as usize]
                .value
                .clone(),
        )
    }

    fn ingest(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        self.kill_existing(key);
        self.append(key, value)
    }

    fn expunge(&mut self, key: ExternalKey) -> bool {
        let existed = self.index.contains_key(&key.raw());
        self.kill_existing(key);
        existed
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    fn instrument(&mut self, registry: &Registry) {
        self.stats.register(registry, self.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_mem::Vpn;
    use fluidmem_sim::SimDuration;

    fn store(mb: usize) -> RamCloudStore {
        RamCloudStore::new(mb << 20, SimClock::new(), SimRng::seed_from_u64(5))
    }

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    #[test]
    fn put_get_roundtrip_preserves_bytes() {
        let mut s = store(16);
        let value = PageContents::from_byte_fill(0x5A);
        s.put(key(1), value.clone()).unwrap();
        assert_eq!(s.get(key(1)).unwrap(), value);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_missing_is_not_found() {
        let mut s = store(16);
        assert!(matches!(s.get(key(9)), Err(KvError::NotFound(_))));
        assert_eq!(s.stats().get_misses, 1);
    }

    #[test]
    fn overwrite_keeps_latest_and_tracks_dead_space() {
        let mut s = store(16);
        s.put(key(1), PageContents::Token(1)).unwrap();
        s.put(key(1), PageContents::Token(2)).unwrap();
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(2));
        assert_eq!(s.len(), 1);
        assert!(s.log_utilization() < 1.0, "old version must be dead space");
    }

    #[test]
    fn delete_removes_and_reports() {
        let mut s = store(16);
        s.put(key(1), PageContents::Token(1)).unwrap();
        assert!(s.delete(key(1)));
        assert!(!s.delete(key(1)));
        assert!(s.get(key(1)).is_err());
    }

    #[test]
    fn operations_charge_virtual_time() {
        let mut s = store(16);
        let t0 = s.clock.now();
        s.put(key(1), PageContents::Token(1)).unwrap();
        let after_put = s.clock.now();
        assert!(
            (after_put - t0) >= SimDuration::from_micros(8),
            "a put must pay a network round trip"
        );
        s.get(key(1)).unwrap();
        assert!(s.clock.now() > after_put);
    }

    #[test]
    fn async_get_overlaps_with_other_work() {
        let mut s = store(16);
        s.put(key(1), PageContents::Token(1)).unwrap();
        let pending = s.begin_get(key(1));
        let issued_at = s.clock.now();
        // Monitor does 50µs of other work while the response flies.
        s.clock.advance(SimDuration::from_micros(50));
        let before_finish = s.clock.now();
        s.finish_get(pending).unwrap();
        let wait = s.clock.now() - before_finish;
        assert!(
            wait < SimDuration::from_micros(3),
            "overlapped get should only pay the bottom half, waited {wait}"
        );
        assert!(before_finish - issued_at >= SimDuration::from_micros(50));
    }

    #[test]
    fn in_flight_get_is_snapshot_isolated() {
        let mut s = store(16);
        s.put(key(1), PageContents::Token(1)).unwrap();
        let pending = s.begin_get(key(1));
        s.put(key(1), PageContents::Token(2)).unwrap();
        assert_eq!(
            s.finish_get(pending).unwrap(),
            PageContents::Token(1),
            "response was formed before the second put"
        );
    }

    #[test]
    fn multi_write_batches() {
        let mut s = store(64);
        let batch: Vec<_> = (0..32).map(|i| (key(i), PageContents::Token(i))).collect();
        s.multi_write(batch).unwrap();
        assert_eq!(s.len(), 32);
        assert_eq!(s.stats().multi_writes, 1);
        assert_eq!(s.stats().batched_puts, 32);
        for i in 0..32 {
            assert_eq!(s.get(key(i)).unwrap(), PageContents::Token(i));
        }
    }

    #[test]
    fn cleaner_reclaims_dead_space() {
        // Capacity ~2 segments; overwrite the same keys repeatedly so the
        // log fills with dead versions and the cleaner must run.
        let mut s = store(32);
        let n = (s.capacity_records / 4) as u64;
        for round in 0..8u64 {
            for i in 0..n {
                s.put(key(i), PageContents::Token(round)).unwrap();
            }
        }
        assert!(s.stats().cleanings > 0, "cleaner should have run");
        for i in 0..n {
            assert_eq!(s.get(key(i)).unwrap(), PageContents::Token(7));
        }
    }

    #[test]
    fn full_of_live_data_refuses_writes() {
        let mut s = RamCloudStore::new(RECORD_BYTES * 8, SimClock::new(), SimRng::seed_from_u64(1));
        for i in 0..8u64 {
            s.put(key(i), PageContents::Token(i)).unwrap();
        }
        assert!(matches!(
            s.put(key(100), PageContents::Token(0)),
            Err(KvError::OutOfCapacity)
        ));
        // Existing data still intact.
        assert_eq!(s.get(key(3)).unwrap(), PageContents::Token(3));
    }

    #[test]
    fn crash_recovery_rebuilds_exact_index() {
        let mut s = store(16);
        for i in 0..64u64 {
            s.put(key(i), PageContents::Token(i)).unwrap();
        }
        // Create dead space so replay must resolve conflicts.
        for i in 0..32u64 {
            s.put(key(i), PageContents::Token(1000 + i)).unwrap();
        }
        s.delete(key(63));
        let recovery_time = s.crash_and_recover();
        assert!(!recovery_time.is_zero());
        assert_eq!(s.stats().recoveries, 1);
        for i in 0..32u64 {
            assert_eq!(s.get(key(i)).unwrap(), PageContents::Token(1000 + i));
        }
        for i in 32..63u64 {
            assert_eq!(s.get(key(i)).unwrap(), PageContents::Token(i));
        }
        assert!(s.get(key(63)).is_err(), "deletes survive recovery");
    }

    #[test]
    fn recovery_time_scales_with_log() {
        let mut small = store(16);
        for i in 0..16u64 {
            small.put(key(i), PageContents::Token(i)).unwrap();
        }
        let mut big = store(64);
        for i in 0..2048u64 {
            big.put(key(i), PageContents::Token(i)).unwrap();
        }
        assert!(big.crash_and_recover() > small.crash_and_recover() * 8);
    }

    #[test]
    fn drop_partition_removes_only_that_partition() {
        let mut s = store(16);
        let p0 = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
        let p1 = ExternalKey::new(Vpn::new(1), PartitionId::new(1));
        s.put(p0, PageContents::Token(0)).unwrap();
        s.put(p1, PageContents::Token(1)).unwrap();
        assert_eq!(s.drop_partition(PartitionId::new(0)), 1);
        assert!(!s.contains(p0));
        assert!(s.contains(p1));
    }
}
