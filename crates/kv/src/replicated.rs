//! Replication across remote servers (a §III cloud-operator
//! customization).

use fluidmem_coord::PartitionId;
use fluidmem_mem::PageContents;

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::StoreStats;
use crate::store::KeyValueStore;
use fluidmem_telemetry::{consts, Counter, Registry};

/// A store that mirrors every page across multiple remote servers, so a
/// store-server failure does not lose VM memory.
///
/// Writes go to every replica (issued back-to-back as asynchronous top
/// halves, so the round trips overlap); reads go to the primary and fail
/// over to the next replica on a miss or after
/// [`fail_replica`](ReplicatedStore::fail_replica), with read-repair
/// bringing a recovered replica back in sync lazily.
///
/// A replica that misses a write — because it was down, or because its
/// transport dropped or refused the request — is remembered as *stale*
/// for exactly those keys. A stale replica's answer for such a key is
/// never trusted: the read fails over to a replica that acked the
/// latest write, and read-repair clears the mark. Without this, a
/// dropped batch write would leave the primary serving an older version
/// of the page with no error — silent data loss.
///
/// The paper notes RAMCloud's own replication "only impacts key-value
/// writes \[and\] since FluidMem carries out writes asynchronously, the
/// overall impact on page fault latency would be minimal" (§VI-A) — a
/// claim the `ablations` bench checks directly with this wrapper.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::{DramStore, ExternalKey, KeyValueStore, ReplicatedStore};
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let clock = SimClock::new();
/// let a = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
/// let b = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(2));
/// let mut store = ReplicatedStore::new(vec![Box::new(a), Box::new(b)]);
/// let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
/// store.put(key, PageContents::Token(5))?;
/// store.fail_replica(0); // primary dies
/// assert_eq!(store.get(key)?, PageContents::Token(5)); // served by the mirror
/// # Ok::<(), fluidmem_kv::KvError>(())
/// ```
pub struct ReplicatedStore {
    replicas: Vec<Box<dyn KeyValueStore>>,
    alive: Vec<bool>,
    /// Per replica: raw keys whose latest write this replica did not
    /// acknowledge (it was dead, or the write dropped / was refused).
    /// Answers for these keys are untrusted until read-repair heals them.
    stale: Vec<std::collections::HashSet<u64>>,
    failovers: Counter,
    repairs: u64,
}

impl ReplicatedStore {
    /// Builds a replicated store over at least one replica.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<Box<dyn KeyValueStore>>) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica");
        let alive = vec![true; replicas.len()];
        let stale = replicas
            .iter()
            .map(|_| std::collections::HashSet::new())
            .collect();
        ReplicatedStore {
            replicas,
            alive,
            stale,
            failovers: Counter::new(),
            repairs: 0,
        }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Marks a replica as failed (its server crashed / unreachable).
    pub fn fail_replica(&mut self, index: usize) {
        self.alive[index] = false;
    }

    /// Brings a replica back; stale pages heal via read-repair.
    pub fn recover_replica(&mut self, index: usize) {
        self.alive[index] = true;
    }

    /// Reads served by a non-primary replica.
    pub fn failovers(&self) -> u64 {
        self.failovers.get()
    }

    /// Pages re-written to lagging replicas by read-repair.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Keys currently known stale on some replica (unacked latest
    /// writes awaiting read-repair).
    pub fn stale_keys(&self) -> usize {
        self.stale.iter().map(|s| s.len()).sum()
    }

    fn first_alive(&self) -> Option<usize> {
        self.alive.iter().position(|&a| a)
    }

    /// Records the outcome of issuing `keys` to replica `i`: an ack
    /// clears any stale marks, a miss (dead replica, dropped or refused
    /// write) sets them.
    fn note_write_outcome(&mut self, i: usize, keys: &[ExternalKey], acked: bool) {
        for key in keys {
            if acked {
                self.stale[i].remove(&key.raw());
            } else {
                self.stale[i].insert(key.raw());
            }
        }
    }
}

impl KeyValueStore for ReplicatedStore {
    fn name(&self) -> &'static str {
        "replicated"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        // Issue all writes as top halves so the round trips overlap, then
        // complete them.
        let mut pendings = Vec::new();
        let mut last_err = None;
        for i in 0..self.replicas.len() {
            if !self.alive[i] {
                self.note_write_outcome(i, &[key], false);
                continue;
            }
            match self.replicas[i].begin_multi_write(vec![(key, value.clone())]) {
                Ok(p) => {
                    self.note_write_outcome(i, &[key], true);
                    pendings.push((i, p));
                }
                Err(e) => {
                    self.note_write_outcome(i, &[key], false);
                    last_err = Some(e);
                }
            }
        }
        if pendings.is_empty() {
            return Err(last_err.unwrap_or(KvError::OutOfCapacity));
        }
        for (i, p) in pendings {
            self.replicas[i].finish_write(p);
        }
        Ok(())
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        let mut existed = false;
        for i in 0..self.replicas.len() {
            if self.alive[i] {
                existed |= self.replicas[i].delete(key);
                self.stale[i].remove(&key.raw());
            } else {
                // The dead replica keeps its copy; distrust it on
                // recovery.
                self.stale[i].insert(key.raw());
            }
        }
        existed
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        let primary = self.first_alive().unwrap_or(0);
        self.replicas[primary].begin_get(key)
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        let key = pending.key();
        let primary = self.first_alive().unwrap_or(0);
        let primary_result = self.replicas[primary].finish_get(pending);
        let primary_stale = self.stale[primary].contains(&key.raw());
        let trusted = match &primary_result {
            Ok(_) => !primary_stale,
            Err(e) => !(matches!(e, KvError::NotFound(_)) || e.is_retryable()),
        };
        if trusted {
            return primary_result;
        }
        // Fail over to a replica that acked the latest write. Read-repair
        // applies when the primary is missing the page or holds a stale
        // version; a timed-out or refused primary that acked the latest
        // write still holds the page and just needs to be reachable again.
        let needs_repair = primary_stale || matches!(primary_result, Err(KvError::NotFound(_)));
        let mut trusted_miss = false;
        for i in 0..self.replicas.len() {
            if i == primary || !self.alive[i] || self.stale[i].contains(&key.raw()) {
                continue;
            }
            match self.replicas[i].get(key) {
                Ok(v) => {
                    self.failovers.inc();
                    if needs_repair && self.replicas[primary].put(key, v.clone()).is_ok() {
                        self.stale[primary].remove(&key.raw());
                        self.repairs += 1;
                    }
                    return Ok(v);
                }
                // A replica that acked every write for this key and has
                // no copy is authoritative: the latest write was a
                // delete.
                Err(KvError::NotFound(_)) => trusted_miss = true,
                Err(_) => {}
            }
        }
        if primary_stale && trusted_miss {
            // The write the stale primary missed was a delete. Without
            // this, the primary's leftover copy would resurrect deleted
            // data and the stale mark would never drain: read-repair the
            // delete through and report an honest miss.
            self.replicas[primary].delete(key);
            self.stale[primary].remove(&key.raw());
            self.repairs += 1;
            return Err(KvError::NotFound(key));
        }
        primary_result
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        // Issue the batch to every alive replica back-to-back so the
        // flights overlap. The first replica that accepts it becomes the
        // caller's handle; a primary that refuses or times out is a
        // failover, not an error, as long as one replica took the batch.
        let primary = self.first_alive().ok_or(KvError::OutOfCapacity)?;
        let keys: Vec<ExternalKey> = batch.iter().map(|(k, _)| *k).collect();
        let mut accepted = Vec::new();
        let mut last_err = None;
        for i in 0..self.replicas.len() {
            if !self.alive[i] {
                self.note_write_outcome(i, &keys, false);
                continue;
            }
            match self.replicas[i].begin_multi_write(batch.clone()) {
                Ok(p) => {
                    self.note_write_outcome(i, &keys, true);
                    accepted.push((i, p));
                }
                Err(e) => {
                    self.note_write_outcome(i, &keys, false);
                    last_err = Some(e);
                }
            }
        }
        if accepted.is_empty() {
            return Err(last_err.unwrap_or(KvError::Unavailable));
        }
        let (lead, lead_pending) = accepted.remove(0);
        if lead != primary {
            self.failovers.inc();
        }
        for (i, p) in accepted {
            self.replicas[i].finish_write(p);
        }
        Ok(lead_pending)
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        let primary = self.first_alive().unwrap_or(0);
        self.replicas[primary].finish_write(pending);
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        let mut dropped = 0;
        for i in 0..self.replicas.len() {
            if self.alive[i] {
                dropped = dropped.max(self.replicas[i].drop_partition(partition));
            }
            self.stale[i].retain(|&raw| raw & 0xFFF != u64::from(partition.raw()));
        }
        dropped
    }

    fn len(&self) -> usize {
        self.first_alive()
            .map(|i| self.replicas[i].len())
            .unwrap_or(0)
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.replicas
            .iter()
            .zip(&self.alive)
            .any(|(r, &alive)| alive && r.contains(key))
    }

    fn partition_keys(&self, partition: PartitionId) -> Vec<ExternalKey> {
        self.first_alive()
            .map(|i| self.replicas[i].partition_keys(partition))
            .unwrap_or_default()
    }

    fn peek(&self, key: ExternalKey) -> Option<PageContents> {
        let primary = self.first_alive()?;
        if self.stale[primary].contains(&key.raw()) {
            // A stale primary's copy is untrusted; peek a replica that
            // acked the latest write instead.
            for (i, r) in self.replicas.iter().enumerate() {
                if i != primary && self.alive[i] && !self.stale[i].contains(&key.raw()) {
                    return r.peek(key);
                }
            }
            return None;
        }
        self.replicas[primary].peek(key)
    }

    fn ingest(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        let mut any = false;
        for i in 0..self.replicas.len() {
            if !self.alive[i] {
                self.note_write_outcome(i, &[key], false);
                continue;
            }
            let acked = self.replicas[i].ingest(key, value.clone()).is_ok();
            self.note_write_outcome(i, &[key], acked);
            any |= acked;
        }
        if any {
            Ok(())
        } else {
            Err(KvError::Unavailable)
        }
    }

    fn expunge(&mut self, key: ExternalKey) -> bool {
        let mut existed = false;
        for i in 0..self.replicas.len() {
            if self.alive[i] {
                existed |= self.replicas[i].expunge(key);
                self.stale[i].remove(&key.raw());
            } else {
                self.stale[i].insert(key.raw());
            }
        }
        existed
    }

    fn stats(&self) -> StoreStats {
        let mut stats = self
            .first_alive()
            .map(|i| self.replicas[i].stats())
            .unwrap_or_default();
        stats.failovers += self.failovers.get();
        stats
    }

    // Replicas are deliberately not instrumented: identical backend
    // names would collide on metric keys, with the last registration
    // silently winning. Only the wrapper's own failover counter is
    // exported.
    fn instrument(&mut self, registry: &Registry) {
        registry.adopt_counter(
            consts::STORE_OPS,
            &[
                (consts::LABEL_STORE, self.name()),
                (consts::LABEL_OP, "failover"),
            ],
            &self.failovers,
        );
    }
}

impl std::fmt::Debug for ReplicatedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedStore")
            .field("replicas", &self.replicas.len())
            .field("alive", &self.alive)
            .field("failovers", &self.failovers.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DramStore, FaultInjectingStore, RamCloudStore};
    use fluidmem_mem::Vpn;
    use fluidmem_sim::{FaultEvent, FaultKind, FaultPlan, SimClock, SimRng};

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    fn two_replica(clock: &SimClock) -> ReplicatedStore {
        let a = RamCloudStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        let b = RamCloudStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(2));
        ReplicatedStore::new(vec![Box::new(a), Box::new(b)])
    }

    #[test]
    fn writes_reach_all_replicas() {
        let clock = SimClock::new();
        let mut s = two_replica(&clock);
        s.put(key(1), PageContents::Token(1)).unwrap();
        assert!(s.replicas[0].contains(key(1)));
        assert!(s.replicas[1].contains(key(1)));
    }

    #[test]
    fn primary_failure_is_transparent() {
        let clock = SimClock::new();
        let mut s = two_replica(&clock);
        for i in 0..8 {
            s.put(key(i), PageContents::Token(i)).unwrap();
        }
        s.fail_replica(0);
        for i in 0..8 {
            assert_eq!(s.get(key(i)).unwrap(), PageContents::Token(i));
        }
    }

    #[test]
    fn read_repair_heals_recovered_replica() {
        let clock = SimClock::new();
        let mut s = two_replica(&clock);
        s.put(key(1), PageContents::Token(1)).unwrap();
        // Replica 0 dies; new data lands only on replica 1.
        s.fail_replica(0);
        s.put(key(2), PageContents::Token(2)).unwrap();
        // Replica 0 comes back stale. Reads of key 2 miss there, fail
        // over, and repair.
        s.recover_replica(0);
        assert_eq!(s.get(key(2)).unwrap(), PageContents::Token(2));
        assert_eq!(s.failovers(), 1);
        assert_eq!(s.repairs(), 1);
        assert!(s.replicas[0].contains(key(2)), "repaired in place");
        // Subsequent reads are served by the primary again.
        assert_eq!(s.get(key(2)).unwrap(), PageContents::Token(2));
        assert_eq!(s.failovers(), 1);
    }

    #[test]
    fn replicated_writes_overlap_not_serialize() {
        // Two RAMCloud replicas: a replicated multi-write should cost
        // roughly one flight, not two (top halves overlap).
        let clock_single = SimClock::new();
        let mut single =
            RamCloudStore::new(1 << 24, clock_single.clone(), SimRng::seed_from_u64(1));
        let batch: Vec<_> = (0..16).map(|i| (key(i), PageContents::Token(i))).collect();
        let t0 = clock_single.now();
        single.multi_write(batch.clone()).unwrap();
        let single_cost = clock_single.now() - t0;

        let clock_repl = SimClock::new();
        let mut repl = two_replica(&clock_repl);
        let t0 = clock_repl.now();
        repl.multi_write(batch).unwrap();
        let repl_cost = clock_repl.now() - t0;

        assert!(
            repl_cost.as_micros_f64() < single_cost.as_micros_f64() * 1.9,
            "replication should overlap: {repl_cost} vs single {single_cost}"
        );
    }

    #[test]
    fn all_replicas_down_errors() {
        let clock = SimClock::new();
        let mut s = two_replica(&clock);
        s.fail_replica(0);
        s.fail_replica(1);
        assert!(s.put(key(1), PageContents::Token(1)).is_err());
    }

    #[test]
    fn delete_propagates() {
        let clock = SimClock::new();
        let a = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        let b = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(2));
        let mut s = ReplicatedStore::new(vec![Box::new(a), Box::new(b)]);
        s.put(key(1), PageContents::Token(1)).unwrap();
        assert!(s.delete(key(1)));
        assert!(!s.replicas[0].contains(key(1)));
        assert!(!s.replicas[1].contains(key(1)));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_replica_set_rejected() {
        ReplicatedStore::new(vec![]);
    }

    fn faulty_primary_pair(clock: &SimClock, events: Vec<(u64, FaultKind)>) -> ReplicatedStore {
        let inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        let mut plan = FaultPlan::new(SimRng::seed_from_u64(9));
        for (at_op, kind) in events {
            plan = plan.script(FaultEvent { at_op, kind });
        }
        let primary = FaultInjectingStore::new(Box::new(inner), plan, clock.clone());
        let secondary = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(2));
        ReplicatedStore::new(vec![Box::new(primary), Box::new(secondary)])
    }

    #[test]
    fn timed_out_primary_read_fails_over_without_repair() {
        let clock = SimClock::new();
        // Primary op 0 is the replicated put's write; op 1 is the read.
        let mut s = faulty_primary_pair(&clock, vec![(1, FaultKind::Drop)]);
        s.put(key(1), PageContents::Token(1)).unwrap();
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(1));
        assert_eq!(s.failovers(), 1);
        // The primary still holds the page — a transport fault is not a
        // miss, so no read-repair write happens.
        assert_eq!(s.repairs(), 0);
        assert_eq!(s.stats().failovers, 1);
    }

    #[test]
    fn dropped_rewrite_marks_primary_stale_and_reads_fail_over() {
        let clock = SimClock::new();
        // Primary op 0: first put lands; op 1: the overwrite is dropped
        // on the wire, so the primary keeps the OLD value with no error.
        let mut s = faulty_primary_pair(&clock, vec![(1, FaultKind::Drop)]);
        s.put(key(1), PageContents::Token(1)).unwrap();
        s.put(key(1), PageContents::Token(2)).unwrap();
        assert_eq!(s.stale_keys(), 1);
        // The stale mark forces the read over to the mirror — without it
        // the primary would happily serve Token(1).
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(2));
        assert_eq!(s.failovers(), 1);
        assert_eq!(s.repairs(), 1);
        assert_eq!(s.stale_keys(), 0);
        // Healed: the next read is primary-served again.
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(2));
        assert_eq!(s.failovers(), 1);
    }

    #[test]
    fn deleted_key_is_not_resurrected_by_a_stale_primary() {
        let clock = SimClock::new();
        let mut s = two_replica(&clock);
        s.put(key(1), PageContents::Token(1)).unwrap();
        // The primary dies; the delete lands only on the mirror and the
        // primary is marked stale for the key.
        s.fail_replica(0);
        assert!(s.delete(key(1)));
        assert_eq!(s.stale_keys(), 1);
        // The primary recovers still holding its pre-delete copy. The
        // read must NOT serve it: the mirror's authoritative miss wins,
        // the delete is repaired through, and the stale mark drains.
        s.recover_replica(0);
        assert!(matches!(s.get(key(1)), Err(KvError::NotFound(_))));
        assert_eq!(s.stale_keys(), 0, "stale mark must drain");
        assert!(!s.replicas[0].contains(key(1)), "delete repaired through");
        // Healed: reads keep missing without touching the mirror.
        assert!(matches!(s.get(key(1)), Err(KvError::NotFound(_))));
    }

    #[test]
    fn stale_keys_drain_to_zero_after_read_repair_under_chaos() {
        // A chaotic primary transport (drops + timeouts + refusals)
        // accumulates stale marks; a full read pass over the keyspace
        // must heal every one — overwrites via failover read-repair,
        // deletes via authoritative-miss repair — leaving no leak.
        let clock = SimClock::new();
        let inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        let plan = FaultPlan::new(SimRng::seed_from_u64(0xFA_17))
            .with_drop(0.15)
            .with_timeout(0.10)
            .with_transient_error(0.10);
        let primary = FaultInjectingStore::new(Box::new(inner), plan, clock.clone());
        let secondary = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(2));
        let mut s = ReplicatedStore::new(vec![Box::new(primary), Box::new(secondary)]);

        for i in 0..64 {
            let _ = s.put(key(i), PageContents::Token(i));
            let _ = s.put(key(i), PageContents::Token(i + 1000));
        }
        // Deletes while the primary is down add delete-shaped staleness.
        s.fail_replica(0);
        for i in 0..16 {
            s.delete(key(i));
        }
        s.recover_replica(0);
        assert!(s.stale_keys() > 0, "chaos must have left stale marks");

        // Repair writes themselves go through the chaotic transport, so
        // one pass may leave marks; repeated passes must converge.
        for _pass in 0..8 {
            if s.stale_keys() == 0 {
                break;
            }
            for i in 0..64 {
                match s.get(key(i)) {
                    Ok(v) => assert_eq!(v, PageContents::Token(i + 1000)),
                    Err(KvError::NotFound(_)) => assert!(i < 16, "only deleted keys may miss"),
                    Err(KvError::Timeout) | Err(KvError::Unavailable) => {}
                    Err(e) => panic!("unexpected error {e:?}"),
                }
            }
        }
        assert_eq!(s.stale_keys(), 0, "read-repair must drain every stale mark");
        assert!(s.repairs() > 0);
    }

    #[test]
    fn refused_primary_write_is_led_by_the_mirror() {
        let clock = SimClock::new();
        let mut s = faulty_primary_pair(&clock, vec![(0, FaultKind::TransientError)]);
        s.multi_write(vec![(key(1), PageContents::Token(1))])
            .unwrap();
        assert_eq!(s.failovers(), 1);
        assert!(s.replicas[1].contains(key(1)), "mirror took the batch");
        // A transient refusal never applies the write on the primary; the
        // data survives on the mirror and heals via read-repair later.
        assert!(!s.replicas[0].contains(key(1)));
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(1));
        assert_eq!(s.repairs(), 1);
    }
}
