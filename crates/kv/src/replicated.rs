//! Replication across remote servers (a §III cloud-operator
//! customization).

use fluidmem_coord::PartitionId;
use fluidmem_mem::PageContents;

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::StoreStats;
use crate::store::KeyValueStore;

/// A store that mirrors every page across multiple remote servers, so a
/// store-server failure does not lose VM memory.
///
/// Writes go to every replica (issued back-to-back as asynchronous top
/// halves, so the round trips overlap); reads go to the primary and fail
/// over to the next replica on a miss or after
/// [`fail_replica`](ReplicatedStore::fail_replica), with read-repair
/// bringing a recovered replica back in sync lazily.
///
/// The paper notes RAMCloud's own replication "only impacts key-value
/// writes \[and\] since FluidMem carries out writes asynchronously, the
/// overall impact on page fault latency would be minimal" (§VI-A) — a
/// claim the `ablations` bench checks directly with this wrapper.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::{DramStore, ExternalKey, KeyValueStore, ReplicatedStore};
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let clock = SimClock::new();
/// let a = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
/// let b = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(2));
/// let mut store = ReplicatedStore::new(vec![Box::new(a), Box::new(b)]);
/// let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
/// store.put(key, PageContents::Token(5))?;
/// store.fail_replica(0); // primary dies
/// assert_eq!(store.get(key)?, PageContents::Token(5)); // served by the mirror
/// # Ok::<(), fluidmem_kv::KvError>(())
/// ```
pub struct ReplicatedStore {
    replicas: Vec<Box<dyn KeyValueStore>>,
    alive: Vec<bool>,
    failovers: u64,
    repairs: u64,
}

impl ReplicatedStore {
    /// Builds a replicated store over at least one replica.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<Box<dyn KeyValueStore>>) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica");
        let alive = vec![true; replicas.len()];
        ReplicatedStore {
            replicas,
            alive,
            failovers: 0,
            repairs: 0,
        }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Marks a replica as failed (its server crashed / unreachable).
    pub fn fail_replica(&mut self, index: usize) {
        self.alive[index] = false;
    }

    /// Brings a replica back; stale pages heal via read-repair.
    pub fn recover_replica(&mut self, index: usize) {
        self.alive[index] = true;
    }

    /// Reads served by a non-primary replica.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Pages re-written to lagging replicas by read-repair.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    fn first_alive(&self) -> Option<usize> {
        self.alive.iter().position(|&a| a)
    }
}

impl KeyValueStore for ReplicatedStore {
    fn name(&self) -> &'static str {
        "replicated"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        // Issue all writes as top halves so the round trips overlap, then
        // complete them.
        let mut pendings = Vec::new();
        let mut last_err = None;
        for i in 0..self.replicas.len() {
            if !self.alive[i] {
                continue;
            }
            match self.replicas[i].begin_multi_write(vec![(key, value.clone())]) {
                Ok(p) => pendings.push((i, p)),
                Err(e) => last_err = Some(e),
            }
        }
        if pendings.is_empty() {
            return Err(last_err.unwrap_or(KvError::OutOfCapacity));
        }
        for (i, p) in pendings {
            self.replicas[i].finish_write(p);
        }
        Ok(())
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        let mut existed = false;
        for i in 0..self.replicas.len() {
            if self.alive[i] {
                existed |= self.replicas[i].delete(key);
            }
        }
        existed
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        let primary = self.first_alive().unwrap_or(0);
        self.replicas[primary].begin_get(key)
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        let key = pending.key();
        let primary = self.first_alive().unwrap_or(0);
        match self.replicas[primary].finish_get(pending) {
            Ok(v) => Ok(v),
            Err(KvError::NotFound(_)) => {
                // Fail over to the mirrors.
                for i in 0..self.replicas.len() {
                    if i == primary || !self.alive[i] {
                        continue;
                    }
                    if let Ok(v) = self.replicas[i].get(key) {
                        self.failovers += 1;
                        // Read-repair the primary.
                        if self.replicas[primary].put(key, v.clone()).is_ok() {
                            self.repairs += 1;
                        }
                        return Ok(v);
                    }
                }
                Err(KvError::NotFound(key))
            }
            Err(e) => Err(e),
        }
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        // Mirror the batch to the secondaries immediately (their flights
        // overlap the primary's); return the primary's pending handle.
        let primary = self.first_alive().ok_or(KvError::OutOfCapacity)?;
        let mut secondary_pendings = Vec::new();
        for i in 0..self.replicas.len() {
            if i != primary && self.alive[i] {
                if let Ok(p) = self.replicas[i].begin_multi_write(batch.clone()) {
                    secondary_pendings.push((i, p));
                }
            }
        }
        let primary_pending = self.replicas[primary].begin_multi_write(batch)?;
        for (i, p) in secondary_pendings {
            self.replicas[i].finish_write(p);
        }
        Ok(primary_pending)
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        let primary = self.first_alive().unwrap_or(0);
        self.replicas[primary].finish_write(pending);
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        let mut dropped = 0;
        for i in 0..self.replicas.len() {
            if self.alive[i] {
                dropped = dropped.max(self.replicas[i].drop_partition(partition));
            }
        }
        dropped
    }

    fn len(&self) -> usize {
        self.first_alive()
            .map(|i| self.replicas[i].len())
            .unwrap_or(0)
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.replicas
            .iter()
            .zip(&self.alive)
            .any(|(r, &alive)| alive && r.contains(key))
    }

    fn stats(&self) -> StoreStats {
        self.first_alive()
            .map(|i| self.replicas[i].stats())
            .unwrap_or_default()
    }
}

impl std::fmt::Debug for ReplicatedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedStore")
            .field("replicas", &self.replicas.len())
            .field("alive", &self.alive)
            .field("failovers", &self.failovers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DramStore, RamCloudStore};
    use fluidmem_mem::Vpn;
    use fluidmem_sim::{SimClock, SimRng};

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    fn two_replica(clock: &SimClock) -> ReplicatedStore {
        let a = RamCloudStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        let b = RamCloudStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(2));
        ReplicatedStore::new(vec![Box::new(a), Box::new(b)])
    }

    #[test]
    fn writes_reach_all_replicas() {
        let clock = SimClock::new();
        let mut s = two_replica(&clock);
        s.put(key(1), PageContents::Token(1)).unwrap();
        assert!(s.replicas[0].contains(key(1)));
        assert!(s.replicas[1].contains(key(1)));
    }

    #[test]
    fn primary_failure_is_transparent() {
        let clock = SimClock::new();
        let mut s = two_replica(&clock);
        for i in 0..8 {
            s.put(key(i), PageContents::Token(i)).unwrap();
        }
        s.fail_replica(0);
        for i in 0..8 {
            assert_eq!(s.get(key(i)).unwrap(), PageContents::Token(i));
        }
    }

    #[test]
    fn read_repair_heals_recovered_replica() {
        let clock = SimClock::new();
        let mut s = two_replica(&clock);
        s.put(key(1), PageContents::Token(1)).unwrap();
        // Replica 0 dies; new data lands only on replica 1.
        s.fail_replica(0);
        s.put(key(2), PageContents::Token(2)).unwrap();
        // Replica 0 comes back stale. Reads of key 2 miss there, fail
        // over, and repair.
        s.recover_replica(0);
        assert_eq!(s.get(key(2)).unwrap(), PageContents::Token(2));
        assert_eq!(s.failovers(), 1);
        assert_eq!(s.repairs(), 1);
        assert!(s.replicas[0].contains(key(2)), "repaired in place");
        // Subsequent reads are served by the primary again.
        assert_eq!(s.get(key(2)).unwrap(), PageContents::Token(2));
        assert_eq!(s.failovers(), 1);
    }

    #[test]
    fn replicated_writes_overlap_not_serialize() {
        // Two RAMCloud replicas: a replicated multi-write should cost
        // roughly one flight, not two (top halves overlap).
        let clock_single = SimClock::new();
        let mut single = RamCloudStore::new(1 << 24, clock_single.clone(), SimRng::seed_from_u64(1));
        let batch: Vec<_> = (0..16).map(|i| (key(i), PageContents::Token(i))).collect();
        let t0 = clock_single.now();
        single.multi_write(batch.clone()).unwrap();
        let single_cost = clock_single.now() - t0;

        let clock_repl = SimClock::new();
        let mut repl = two_replica(&clock_repl);
        let t0 = clock_repl.now();
        repl.multi_write(batch).unwrap();
        let repl_cost = clock_repl.now() - t0;

        assert!(
            repl_cost.as_micros_f64() < single_cost.as_micros_f64() * 1.9,
            "replication should overlap: {repl_cost} vs single {single_cost}"
        );
    }

    #[test]
    fn all_replicas_down_errors() {
        let clock = SimClock::new();
        let mut s = two_replica(&clock);
        s.fail_replica(0);
        s.fail_replica(1);
        assert!(s.put(key(1), PageContents::Token(1)).is_err());
    }

    #[test]
    fn delete_propagates() {
        let clock = SimClock::new();
        let a = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        let b = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(2));
        let mut s = ReplicatedStore::new(vec![Box::new(a), Box::new(b)]);
        s.put(key(1), PageContents::Token(1)).unwrap();
        assert!(s.delete(key(1)));
        assert!(!s.replicas[0].contains(key(1)));
        assert!(!s.replicas[1].contains(key(1)));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_replica_set_rejected() {
        ReplicatedStore::new(vec![]);
    }
}
