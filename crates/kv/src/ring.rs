//! A consistent-hash ring mapping partitions to store nodes.
//!
//! The cluster layer (§ DESIGN.md 15) shards a host's remote memory
//! across N store nodes. Partition placement must be *stable* — adding
//! or removing a node may only move the partitions whose arc changed,
//! never reshuffle the whole table — so routing uses the classic
//! consistent-hash construction: every node contributes a fixed number
//! of *virtual nodes* (points on a 64-bit ring), and a partition homes
//! at the first point clockwise of its own hash.
//!
//! Hashing is FNV-1a, the same deterministic function the coordination
//! service's [`PartitionTable`](fluidmem_coord::PartitionTable) uses for
//! partition placement, so ring layout is a pure function of membership
//! and never consults the simulation RNG.

use std::collections::BTreeSet;

use fluidmem_coord::PartitionId;

/// Identifies one store node in a sharded cluster.
///
/// Node ids are small dense integers assigned by the host agent at join
/// time; they name the node in telemetry labels, coordination-service
/// paths (`/fluidmem/stores/<id>`), and routing entries.
pub type NodeId = u32;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // FNV alone clusters short inputs (a 2-byte partition id touches only
    // the low bits meaningfully), which skews arc lengths badly; a
    // splitmix64-style avalanche spreads the points across the ring.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring with virtual nodes.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::HashRing;
///
/// let mut ring = HashRing::new(64);
/// ring.add_node(0);
/// ring.add_node(1);
/// let before = ring.home_of(PartitionId::new(7)).unwrap();
/// ring.add_node(2);
/// // Stability: a partition either stays home or moves to the new node.
/// let after = ring.home_of(PartitionId::new(7)).unwrap();
/// assert!(after == before || after == 2);
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node)` sorted by point; ties broken by node id so layout
    /// is independent of insertion order.
    points: Vec<(u64, NodeId)>,
    nodes: BTreeSet<NodeId>,
    vnodes: u32,
}

impl HashRing {
    /// An empty ring where each node will contribute `vnodes` points.
    pub fn new(vnodes: u32) -> Self {
        assert!(vnodes > 0, "a node must contribute at least one point");
        HashRing {
            points: Vec::new(),
            nodes: BTreeSet::new(),
            vnodes,
        }
    }

    /// Adds a node's virtual points. Returns `false` (and changes
    /// nothing) if the node is already present.
    pub fn add_node(&mut self, node: NodeId) -> bool {
        if !self.nodes.insert(node) {
            return false;
        }
        for replica in 0..self.vnodes {
            let mut tag = [0u8; 8];
            tag[..4].copy_from_slice(&node.to_le_bytes());
            tag[4..].copy_from_slice(&replica.to_le_bytes());
            self.points.push((fnv1a(&tag), node));
        }
        self.points.sort_unstable();
        true
    }

    /// Removes a node's virtual points. Returns `false` if absent.
    pub fn remove_node(&mut self, node: NodeId) -> bool {
        if !self.nodes.remove(&node) {
            return false;
        }
        self.points.retain(|&(_, n)| n != node);
        true
    }

    /// Whether `node` is on the ring.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Member node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The node a partition homes at: the first ring point at or
    /// clockwise of the partition's hash, wrapping at the top. `None`
    /// on an empty ring.
    pub fn home_of(&self, partition: PartitionId) -> Option<NodeId> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a(&partition.raw().to_le_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, node) = self.points[idx % self.points.len()];
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homes(ring: &HashRing) -> Vec<NodeId> {
        (0..PartitionId::COUNT)
            .map(|p| ring.home_of(PartitionId::new(p)).unwrap())
            .collect()
    }

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = HashRing::new(8);
        assert_eq!(ring.home_of(PartitionId::new(0)), None);
        assert_eq!(ring.node_count(), 0);
    }

    #[test]
    fn single_node_owns_everything() {
        let mut ring = HashRing::new(8);
        assert!(ring.add_node(3));
        assert!(!ring.add_node(3), "double add is a no-op");
        assert!(homes(&ring).iter().all(|&n| n == 3));
    }

    #[test]
    fn layout_is_insertion_order_independent() {
        let mut a = HashRing::new(64);
        for n in [0, 1, 2, 3] {
            a.add_node(n);
        }
        let mut b = HashRing::new(64);
        for n in [3, 1, 0, 2] {
            b.add_node(n);
        }
        assert_eq!(homes(&a), homes(&b));
    }

    #[test]
    fn adding_a_node_only_moves_partitions_to_it() {
        let mut ring = HashRing::new(64);
        ring.add_node(0);
        ring.add_node(1);
        let before = homes(&ring);
        ring.add_node(2);
        let after = homes(&ring);
        let mut moved = 0;
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(*a, 2, "movement may only target the new node");
                moved += 1;
            }
        }
        assert!(moved > 0, "the new node must take some load");
        assert!(
            moved < PartitionId::COUNT as usize / 2,
            "consistent hashing must not reshuffle the majority ({moved} moved)"
        );
    }

    #[test]
    fn removing_a_node_reassigns_only_its_partitions() {
        let mut ring = HashRing::new(64);
        for n in 0..4 {
            ring.add_node(n);
        }
        let before = homes(&ring);
        ring.remove_node(2);
        assert!(!ring.contains(2));
        let after = homes(&ring);
        for (b, a) in before.iter().zip(&after) {
            if *b != 2 {
                assert_eq!(b, a, "survivors keep their partitions");
            } else {
                assert_ne!(*a, 2);
            }
        }
    }

    #[test]
    fn virtual_nodes_spread_load_roughly_evenly() {
        let mut ring = HashRing::new(64);
        for n in 0..4 {
            ring.add_node(n);
        }
        let mut per_node = [0usize; 4];
        for h in homes(&ring) {
            per_node[h as usize] += 1;
        }
        let mean = PartitionId::COUNT as usize / 4;
        for (n, &count) in per_node.iter().enumerate() {
            assert!(
                count > mean / 3 && count < mean * 3,
                "node {n} owns {count} of {} partitions",
                PartitionId::COUNT
            );
        }
    }
}
