//! Page compression (a §III cloud-operator customization).
//!
//! "Cloud providers can further benefit from the flexibility that comes
//! from handling memory paging in user space to rapidly deploy a variety
//! of customizations ... Some examples are page compression or
//! replication across remote servers."

use fluidmem_coord::PartitionId;
use fluidmem_mem::{PageContents, PAGE_SIZE};
use fluidmem_sim::{LatencyModel, SimClock, SimRng};

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::StoreStats;
use crate::store::KeyValueStore;
use fluidmem_telemetry::Registry;

/// Magic byte tagging an RLE-compressed page.
const RLE_MAGIC: u8 = 0xC7;

/// Run-length encodes a 4 KB page. Returns `None` when compression would
/// not shrink the page (incompressible data is stored raw, as real
/// compressed-memory systems do).
pub fn rle_compress(page: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(page.len() / 2);
    out.push(RLE_MAGIC);
    let mut i = 0;
    while i < page.len() {
        let byte = page[i];
        let mut run = 1usize;
        while i + run < page.len() && page[i + run] == byte && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(byte);
        i += run;
        if out.len() >= page.len() {
            return None; // incompressible
        }
    }
    Some(out)
}

/// Inverts [`rle_compress`].
///
/// # Panics
///
/// Panics if the buffer is not a valid RLE page (corruption).
pub fn rle_decompress(data: &[u8]) -> Vec<u8> {
    assert_eq!(data.first(), Some(&RLE_MAGIC), "not an RLE page");
    let mut out = Vec::with_capacity(PAGE_SIZE);
    let mut i = 1;
    while i + 1 < data.len() + 1 && i < data.len() {
        let run = data[i] as usize;
        let byte = data[i + 1];
        out.extend(std::iter::repeat_n(byte, run));
        i += 2;
    }
    out
}

fn compress_contents(contents: &PageContents) -> (PageContents, bool) {
    match contents {
        // Zero pages and token stand-ins are already minimal.
        PageContents::Zero => (PageContents::Zero, true),
        PageContents::Token(t) => (PageContents::Token(*t), false),
        PageContents::Bytes(b) => match rle_compress(b) {
            Some(c) => (PageContents::Bytes(c.into_boxed_slice()), true),
            None => (PageContents::Bytes(b.clone()), false),
        },
    }
}

fn decompress_contents(contents: PageContents) -> PageContents {
    match contents {
        PageContents::Bytes(b) if b.first() == Some(&RLE_MAGIC) => {
            PageContents::from_bytes(&rle_decompress(&b))
        }
        other => other,
    }
}

/// A store wrapper that compresses pages on the way out and decompresses
/// on the way in, charging the monitor's CPU for both.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::{CompressedStore, DramStore, ExternalKey, KeyValueStore};
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let clock = SimClock::new();
/// let inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
/// let mut store = CompressedStore::new(Box::new(inner), clock, SimRng::seed_from_u64(2));
/// let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
/// store.put(key, PageContents::from_byte_fill(7))?;
/// assert_eq!(store.get(key)?, PageContents::from_byte_fill(7));
/// assert!(store.pages_compressed() > 0);
/// # Ok::<(), fluidmem_kv::KvError>(())
/// ```
pub struct CompressedStore {
    inner: Box<dyn KeyValueStore>,
    compress_cost: LatencyModel,
    decompress_cost: LatencyModel,
    clock: SimClock,
    rng: SimRng,
    pages_compressed: u64,
    pages_incompressible: u64,
}

impl CompressedStore {
    /// Wraps a store with default compression costs (≈1.6 µs to
    /// compress a page, ≈0.8 µs to decompress — LZ-class speeds).
    pub fn new(inner: Box<dyn KeyValueStore>, clock: SimClock, rng: SimRng) -> Self {
        CompressedStore {
            inner,
            compress_cost: LatencyModel::normal_us(1.6, 0.2),
            decompress_cost: LatencyModel::normal_us(0.8, 0.1),
            clock,
            rng,
            pages_compressed: 0,
            pages_incompressible: 0,
        }
    }

    /// Pages stored in compressed form.
    pub fn pages_compressed(&self) -> u64 {
        self.pages_compressed
    }

    /// Pages stored raw because compression did not shrink them.
    pub fn pages_incompressible(&self) -> u64 {
        self.pages_incompressible
    }

    fn compress(&mut self, contents: PageContents) -> PageContents {
        let cost = self.compress_cost.sample(&mut self.rng);
        self.clock.advance(cost);
        let (out, shrunk) = compress_contents(&contents);
        if shrunk {
            self.pages_compressed += 1;
        } else {
            self.pages_incompressible += 1;
        }
        out
    }

    fn decompress(&mut self, contents: PageContents) -> PageContents {
        let cost = self.decompress_cost.sample(&mut self.rng);
        self.clock.advance(cost);
        decompress_contents(contents)
    }
}

impl KeyValueStore for CompressedStore {
    fn name(&self) -> &'static str {
        "compressed"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        let compressed = self.compress(value);
        self.inner.put(key, compressed)
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        self.inner.delete(key)
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        self.inner.begin_get(key)
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        let raw = self.inner.finish_get(pending)?;
        Ok(self.decompress(raw))
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        let compressed: Vec<_> = batch
            .into_iter()
            .map(|(k, v)| (k, self.compress(v)))
            .collect();
        self.inner.begin_multi_write(compressed)
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        self.inner.finish_write(pending)
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        self.inner.drop_partition(partition)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.inner.contains(key)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn instrument(&mut self, registry: &Registry) {
        self.inner.instrument(registry)
    }
}

impl std::fmt::Debug for CompressedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedStore")
            .field("inner", &self.inner.name())
            .field("compressed", &self.pages_compressed)
            .field("incompressible", &self.pages_incompressible)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramStore;
    use fluidmem_mem::Vpn;

    fn store() -> CompressedStore {
        let clock = SimClock::new();
        let inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        CompressedStore::new(Box::new(inner), clock, SimRng::seed_from_u64(2))
    }

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    #[test]
    fn rle_round_trip_compressible() {
        let page = vec![7u8; PAGE_SIZE];
        let c = rle_compress(&page).expect("uniform page compresses");
        assert!(
            c.len() < 64,
            "4096 identical bytes pack tiny, got {}",
            c.len()
        );
        assert_eq!(rle_decompress(&c), page);
    }

    #[test]
    fn rle_round_trip_structured() {
        let mut page = vec![0u8; PAGE_SIZE];
        for i in 0..64 {
            page[i * 64] = i as u8;
        }
        let c = rle_compress(&page).expect("sparse page compresses");
        assert_eq!(rle_decompress(&c), page);
    }

    #[test]
    fn incompressible_data_stored_raw() {
        let mut page = Vec::with_capacity(PAGE_SIZE);
        let mut x = 1u32;
        for _ in 0..PAGE_SIZE {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            page.push((x >> 24) as u8);
        }
        assert!(rle_compress(&page).is_none(), "noise must not 'compress'");
        let mut s = store();
        s.put(key(1), PageContents::from_bytes(&page)).unwrap();
        assert_eq!(s.pages_incompressible(), 1);
        assert_eq!(s.get(key(1)).unwrap(), PageContents::from_bytes(&page));
    }

    #[test]
    fn compressible_pages_round_trip_through_store() {
        let mut s = store();
        for i in 0..16u8 {
            s.put(key(u64::from(i)), PageContents::from_byte_fill(i))
                .unwrap();
        }
        assert_eq!(s.pages_compressed(), 16);
        for i in 0..16u8 {
            assert_eq!(
                s.get(key(u64::from(i))).unwrap(),
                PageContents::from_byte_fill(i)
            );
        }
    }

    #[test]
    fn token_and_zero_pass_through() {
        let mut s = store();
        s.put(key(1), PageContents::Token(9)).unwrap();
        s.put(key(2), PageContents::Zero).unwrap();
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(9));
        assert_eq!(s.get(key(2)).unwrap(), PageContents::Zero);
    }

    #[test]
    fn compression_charges_cpu() {
        let mut s = store();
        let t0 = s.clock.now();
        s.put(key(1), PageContents::from_byte_fill(1)).unwrap();
        assert!((s.clock.now() - t0).as_micros_f64() > 1.0);
    }

    #[test]
    fn multi_write_compresses_batches() {
        let mut s = store();
        let batch: Vec<_> = (0..8)
            .map(|i| (key(i), PageContents::from_byte_fill(i as u8)))
            .collect();
        s.multi_write(batch).unwrap();
        assert_eq!(s.pages_compressed(), 8);
        assert_eq!(s.get(key(3)).unwrap(), PageContents::from_byte_fill(3));
    }
}
