//! Page compression (a §III cloud-operator customization).
//!
//! "Cloud providers can further benefit from the flexibility that comes
//! from handling memory paging in user space to rapidly deploy a variety
//! of customizations ... Some examples are page compression or
//! replication across remote servers."

use fluidmem_coord::PartitionId;
use fluidmem_mem::{PageContents, PAGE_SIZE};
use fluidmem_sim::{LatencyModel, SimClock, SimRng};

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::StoreStats;
use crate::store::KeyValueStore;
use fluidmem_telemetry::Registry;

/// Frame tag of an RLE-compressed page.
const RLE_MAGIC: u8 = 0xC7;

/// Frame tag of a page stored raw because compression would not shrink
/// it. Every byte payload leaving [`CompressedStore`] carries exactly
/// one of the two tags, so decoding never has to guess from the page's
/// own first byte (which can legally be `0xC7`).
const RAW_MAGIC: u8 = 0xC8;

/// Run-length encodes a 4 KB page. Returns `None` when compression would
/// not shrink the page (incompressible data is stored raw, as real
/// compressed-memory systems do).
pub fn rle_compress(page: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(page.len() / 2);
    out.push(RLE_MAGIC);
    let mut i = 0;
    while i < page.len() {
        let byte = page[i];
        let mut run = 1usize;
        while i + run < page.len() && page[i + run] == byte && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(byte);
        i += run;
        if out.len() >= page.len() {
            return None; // incompressible
        }
    }
    Some(out)
}

/// Exact byte length [`rle_compress`] would produce for `page`, without
/// allocating the output: `None` iff `rle_compress` returns `None`
/// (the page is incompressible). This is *the* sizing policy — zram's
/// slot accounting and the monitor's compressed tier both charge by it,
/// so pool occupancy always matches what [`CompressedStore`] would
/// actually store.
pub fn rle_len(page: &[u8]) -> Option<usize> {
    let mut out = 1usize; // the RLE_MAGIC frame tag
    let mut i = 0;
    while i < page.len() {
        let byte = page[i];
        let mut run = 1usize;
        while i + run < page.len() && page[i + run] == byte && run < 255 {
            run += 1;
        }
        out += 2; // (run, byte) pair
        i += run;
        if out >= page.len() {
            return None; // incompressible
        }
    }
    Some(out)
}

/// Compressed size a pool charges for `contents` under the shared RLE
/// policy, mirroring [`rle_compress`]'s framing exactly: zero pages are
/// metadata-only, token stand-ins cost a nominal slot, and only exact
/// full pages go through RLE (the decoder validates decoded length
/// against `PAGE_SIZE`). `None` means incompressible — callers store
/// raw (zram) or bypass the compressed tier entirely (the monitor).
pub fn stored_page_size(contents: &PageContents) -> Option<usize> {
    match contents {
        PageContents::Zero => Some(0),
        PageContents::Token(_) => Some(TOKEN_STORED_BYTES),
        PageContents::Bytes(b) if b.len() == PAGE_SIZE => rle_len(b),
        PageContents::Bytes(_) => None,
    }
}

/// Nominal slot charge for a [`PageContents::Token`] stand-in page: the
/// simulation's token carries no real payload, so pools charge it like
/// a small compressed page rather than zero (it still occupies a slot).
pub const TOKEN_STORED_BYTES: usize = 64;

/// Inverts [`rle_compress`]. Returns [`KvError::Corruption`] instead of
/// panicking when the buffer is damaged: a missing tag, a dangling
/// half-pair (odd payload length), or a zero-length run (which the
/// compressor never emits).
pub fn rle_decompress(data: &[u8]) -> Result<Vec<u8>, KvError> {
    if data.first() != Some(&RLE_MAGIC) {
        return Err(KvError::Corruption("RLE frame tag missing"));
    }
    if data.len() % 2 != 1 {
        return Err(KvError::Corruption("truncated RLE pair"));
    }
    let mut out = Vec::with_capacity(PAGE_SIZE);
    let mut i = 1;
    while i + 1 < data.len() {
        let run = data[i] as usize;
        if run == 0 {
            return Err(KvError::Corruption("zero-length RLE run"));
        }
        let byte = data[i + 1];
        out.extend(std::iter::repeat_n(byte, run));
        i += 2;
    }
    Ok(out)
}

fn compress_contents(contents: &PageContents) -> (PageContents, bool) {
    match contents {
        // Zero pages and token stand-ins are already minimal.
        PageContents::Zero => (PageContents::Zero, true),
        PageContents::Token(t) => (PageContents::Token(*t), false),
        PageContents::Bytes(b) => {
            // Only full pages go through RLE: the decoder validates the
            // decoded length against `PAGE_SIZE`, so odd-sized payloads
            // must take the length-preserving raw frame.
            let compressed = if b.len() == PAGE_SIZE {
                rle_compress(b)
            } else {
                None
            };
            match compressed {
                Some(c) => (PageContents::Bytes(c.into_boxed_slice()), true),
                None => {
                    let mut framed = Vec::with_capacity(b.len() + 1);
                    framed.push(RAW_MAGIC);
                    framed.extend_from_slice(b);
                    (PageContents::Bytes(framed.into_boxed_slice()), false)
                }
            }
        }
    }
}

fn decompress_contents(contents: PageContents) -> Result<PageContents, KvError> {
    match contents {
        PageContents::Bytes(b) => match b.first() {
            Some(&RLE_MAGIC) => {
                let decoded = rle_decompress(&b)?;
                if decoded.len() != PAGE_SIZE {
                    return Err(KvError::Corruption("RLE page decoded to a non-page length"));
                }
                Ok(PageContents::Bytes(decoded.into_boxed_slice()))
            }
            Some(&RAW_MAGIC) => Ok(PageContents::Bytes(b[1..].to_vec().into_boxed_slice())),
            _ => Err(KvError::Corruption("unknown page frame tag")),
        },
        other => Ok(other),
    }
}

/// A store wrapper that compresses pages on the way out and decompresses
/// on the way in, charging the monitor's CPU for both.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::{CompressedStore, DramStore, ExternalKey, KeyValueStore};
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let clock = SimClock::new();
/// let inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
/// let mut store = CompressedStore::new(Box::new(inner), clock, SimRng::seed_from_u64(2));
/// let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
/// store.put(key, PageContents::from_byte_fill(7))?;
/// assert_eq!(store.get(key)?, PageContents::from_byte_fill(7));
/// assert!(store.pages_compressed() > 0);
/// # Ok::<(), fluidmem_kv::KvError>(())
/// ```
pub struct CompressedStore {
    inner: Box<dyn KeyValueStore>,
    compress_cost: LatencyModel,
    decompress_cost: LatencyModel,
    clock: SimClock,
    rng: SimRng,
    pages_compressed: u64,
    pages_incompressible: u64,
}

impl CompressedStore {
    /// Wraps a store with default compression costs (≈1.6 µs to
    /// compress a page, ≈0.8 µs to decompress — LZ-class speeds).
    pub fn new(inner: Box<dyn KeyValueStore>, clock: SimClock, rng: SimRng) -> Self {
        CompressedStore {
            inner,
            compress_cost: LatencyModel::normal_us(1.6, 0.2),
            decompress_cost: LatencyModel::normal_us(0.8, 0.1),
            clock,
            rng,
            pages_compressed: 0,
            pages_incompressible: 0,
        }
    }

    /// Pages stored in compressed form.
    pub fn pages_compressed(&self) -> u64 {
        self.pages_compressed
    }

    /// Pages stored raw because compression did not shrink them.
    pub fn pages_incompressible(&self) -> u64 {
        self.pages_incompressible
    }

    fn compress(&mut self, contents: PageContents) -> PageContents {
        let cost = self.compress_cost.sample(&mut self.rng);
        self.clock.advance(cost);
        let (out, shrunk) = compress_contents(&contents);
        if shrunk {
            self.pages_compressed += 1;
        } else {
            self.pages_incompressible += 1;
        }
        out
    }

    fn decompress(&mut self, contents: PageContents) -> Result<PageContents, KvError> {
        let cost = self.decompress_cost.sample(&mut self.rng);
        self.clock.advance(cost);
        decompress_contents(contents)
    }
}

impl KeyValueStore for CompressedStore {
    fn name(&self) -> &'static str {
        "compressed"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        let compressed = self.compress(value);
        self.inner.put(key, compressed)
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        self.inner.delete(key)
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        self.inner.begin_get(key)
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        let raw = self.inner.finish_get(pending)?;
        self.decompress(raw)
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        let compressed: Vec<_> = batch
            .into_iter()
            .map(|(k, v)| (k, self.compress(v)))
            .collect();
        self.inner.begin_multi_write(compressed)
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        self.inner.finish_write(pending)
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        self.inner.drop_partition(partition)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.inner.contains(key)
    }

    fn partition_keys(&self, partition: PartitionId) -> Vec<ExternalKey> {
        self.inner.partition_keys(partition)
    }

    // Maintenance ops run the codec as pure functions — no CPU charge,
    // no RNG draw — so a migration copier streaming through this wrapper
    // stays invisible to the fault path's timing.
    fn peek(&self, key: ExternalKey) -> Option<PageContents> {
        let stored = self.inner.peek(key)?;
        decompress_contents(stored).ok()
    }

    fn ingest(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        let (compressed, _) = compress_contents(&value);
        self.inner.ingest(key, compressed)
    }

    fn expunge(&mut self, key: ExternalKey) -> bool {
        self.inner.expunge(key)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn instrument(&mut self, registry: &Registry) {
        self.inner.instrument(registry)
    }
}

impl std::fmt::Debug for CompressedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedStore")
            .field("inner", &self.inner.name())
            .field("compressed", &self.pages_compressed)
            .field("incompressible", &self.pages_incompressible)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramStore;
    use fluidmem_mem::Vpn;

    fn store() -> CompressedStore {
        let clock = SimClock::new();
        let inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        CompressedStore::new(Box::new(inner), clock, SimRng::seed_from_u64(2))
    }

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    #[test]
    fn rle_round_trip_compressible() {
        let page = vec![7u8; PAGE_SIZE];
        let c = rle_compress(&page).expect("uniform page compresses");
        assert!(
            c.len() < 64,
            "4096 identical bytes pack tiny, got {}",
            c.len()
        );
        assert_eq!(rle_decompress(&c).unwrap(), page);
    }

    #[test]
    fn rle_round_trip_structured() {
        let mut page = vec![0u8; PAGE_SIZE];
        for i in 0..64 {
            page[i * 64] = i as u8;
        }
        let c = rle_compress(&page).expect("sparse page compresses");
        assert_eq!(rle_decompress(&c).unwrap(), page);
    }

    #[test]
    fn incompressible_data_stored_raw() {
        let mut page = Vec::with_capacity(PAGE_SIZE);
        let mut x = 1u32;
        for _ in 0..PAGE_SIZE {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            page.push((x >> 24) as u8);
        }
        assert!(rle_compress(&page).is_none(), "noise must not 'compress'");
        let mut s = store();
        s.put(key(1), PageContents::from_bytes(&page)).unwrap();
        assert_eq!(s.pages_incompressible(), 1);
        assert_eq!(s.get(key(1)).unwrap(), PageContents::from_bytes(&page));
    }

    #[test]
    fn compressible_pages_round_trip_through_store() {
        let mut s = store();
        for i in 0..16u8 {
            s.put(key(u64::from(i)), PageContents::from_byte_fill(i))
                .unwrap();
        }
        assert_eq!(s.pages_compressed(), 16);
        for i in 0..16u8 {
            assert_eq!(
                s.get(key(u64::from(i))).unwrap(),
                PageContents::from_byte_fill(i)
            );
        }
    }

    #[test]
    fn token_and_zero_pass_through() {
        let mut s = store();
        s.put(key(1), PageContents::Token(9)).unwrap();
        s.put(key(2), PageContents::Zero).unwrap();
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(9));
        assert_eq!(s.get(key(2)).unwrap(), PageContents::Zero);
    }

    #[test]
    fn compression_charges_cpu() {
        let mut s = store();
        let t0 = s.clock.now();
        s.put(key(1), PageContents::from_byte_fill(1)).unwrap();
        assert!((s.clock.now() - t0).as_micros_f64() > 1.0);
    }

    #[test]
    fn multi_write_compresses_batches() {
        let mut s = store();
        let batch: Vec<_> = (0..8)
            .map(|i| (key(i), PageContents::from_byte_fill(i as u8)))
            .collect();
        s.multi_write(batch).unwrap();
        assert_eq!(s.pages_compressed(), 8);
        assert_eq!(s.get(key(3)).unwrap(), PageContents::from_byte_fill(3));
    }

    /// An incompressible page whose first byte equals the RLE magic used
    /// to be "decompressed" into garbage on the way back.
    #[test]
    fn leading_magic_byte_round_trips_exactly() {
        let mut page = noise_page(7);
        page[0] = 0xC7;
        assert!(rle_compress(&page).is_none(), "noise must not 'compress'");
        let mut s = store();
        s.put(key(1), PageContents::from_bytes(&page)).unwrap();
        assert_eq!(s.get(key(1)).unwrap(), PageContents::from_bytes(&page));
    }

    #[test]
    fn every_leading_byte_round_trips() {
        for lead in 0..=255u8 {
            let mut page = noise_page(u64::from(lead) + 1);
            page[0] = lead;
            let mut s = store();
            s.put(key(1), PageContents::from_bytes(&page)).unwrap();
            assert_eq!(
                s.get(key(1)).unwrap(),
                PageContents::from_bytes(&page),
                "leading byte {lead:#04x} corrupted the round trip"
            );
        }
    }

    #[test]
    fn truncated_rle_buffer_is_an_error_not_a_panic() {
        // Dangling half-pair: a run byte with no value byte.
        assert!(matches!(
            rle_decompress(&[RLE_MAGIC, 5]),
            Err(KvError::Corruption(_))
        ));
        assert!(matches!(
            rle_decompress(&[RLE_MAGIC, 16, 7, 3]),
            Err(KvError::Corruption(_))
        ));
        assert!(matches!(rle_decompress(&[]), Err(KvError::Corruption(_))));
        assert!(matches!(
            rle_decompress(&[0x00, 1, 2]),
            Err(KvError::Corruption(_))
        ));
    }

    /// Damaged bytes in the backing store surface as a `KvError` through
    /// `CompressedStore::get`, never as a panic.
    #[test]
    fn corrupted_store_value_surfaces_kv_error() {
        let clock = SimClock::new();
        let mut inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        // Truncated RLE frame, an untagged payload, and a short decode.
        inner
            .put(key(1), PageContents::Bytes(vec![RLE_MAGIC, 9].into()))
            .unwrap();
        inner
            .put(key(2), PageContents::Bytes(vec![0x01, 0x02, 0x03].into()))
            .unwrap();
        inner
            .put(key(3), PageContents::Bytes(vec![RLE_MAGIC, 4, 7].into()))
            .unwrap();
        let mut s = CompressedStore::new(Box::new(inner), clock, SimRng::seed_from_u64(2));
        for k in [key(1), key(2), key(3)] {
            match s.get(k) {
                Err(KvError::Corruption(_)) => {}
                other => panic!("expected corruption error for {k}, got {other:?}"),
            }
        }
    }

    /// Deterministic LCG noise, incompressible by construction.
    fn noise_page(seed: u64) -> Vec<u8> {
        let mut page = Vec::with_capacity(PAGE_SIZE);
        let mut x = seed.wrapping_mul(2862933555777941757).wrapping_add(1) | 1;
        for _ in 0..PAGE_SIZE {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            page.push((x >> 56) as u8);
        }
        page
    }

    /// Adversarial pages — all-magic, leading-magic noise, pure noise,
    /// and run-structured — must round-trip exactly through the store.
    #[test]
    fn prop_adversarial_pages_round_trip() {
        fluidmem_sim::prop::forall("compressed-store-round-trip", 128, |rng| {
            let mut page = match rng.gen_index(4) {
                // Entirely the RLE magic byte: highly compressible.
                0 => vec![RLE_MAGIC; PAGE_SIZE],
                // Incompressible noise with an adversarial first byte.
                1 => {
                    let mut p = noise_page(rng.gen_u64());
                    p[0] = if rng.gen_bool(0.5) {
                        RLE_MAGIC
                    } else {
                        RAW_MAGIC
                    };
                    p
                }
                // Plain incompressible noise.
                2 => noise_page(rng.gen_u64()),
                // Run-structured: long runs of random bytes (compressible).
                _ => {
                    let mut p = Vec::with_capacity(PAGE_SIZE);
                    while p.len() < PAGE_SIZE {
                        let byte = (rng.gen_u64() >> 32) as u8;
                        let run = rng.gen_range(32, 512) as usize;
                        p.extend(std::iter::repeat_n(byte, run.min(PAGE_SIZE - p.len())));
                    }
                    p
                }
            };
            // Occasionally plant the magic at the front regardless.
            if rng.gen_bool(0.25) {
                page[0] = RLE_MAGIC;
            }
            let mut s = store();
            let contents = PageContents::from_bytes(&page);
            s.put(key(1), contents.clone()).unwrap();
            assert_eq!(s.get(key(1)).unwrap(), contents);
        });
    }

    /// The allocation-free sizer must agree with the real compressor on
    /// every buffer: same `None` (incompressible) verdicts, same output
    /// lengths. Random and adversarial shapes, including the non-page
    /// sizes zram used to mis-size.
    #[test]
    fn prop_rle_len_matches_rle_compress() {
        fluidmem_sim::prop::forall("rle-len-matches-compress", 256, |rng| {
            let page: Vec<u8> = match rng.gen_index(6) {
                // Uniform fill: maximally compressible.
                0 => vec![(rng.gen_u64() >> 40) as u8; PAGE_SIZE],
                // Pure noise: incompressible.
                1 => noise_page(rng.gen_u64()),
                // Run-structured with random run lengths (incl. >255).
                2 => {
                    let mut p = Vec::with_capacity(PAGE_SIZE);
                    while p.len() < PAGE_SIZE {
                        let byte = (rng.gen_u64() >> 32) as u8;
                        let run = rng.gen_range(1, 600) as usize;
                        p.extend(std::iter::repeat_n(byte, run.min(PAGE_SIZE - p.len())));
                    }
                    p
                }
                // Short / odd-sized payloads (the zram divergence case).
                3 => {
                    let len = rng.gen_index(257) as usize;
                    noise_page(rng.gen_u64())[..len].to_vec()
                }
                // Empty and single-byte degenerate shapes.
                4 => vec![0xC7; rng.gen_index(2) as usize],
                // Alternating two-byte pattern: worst-case run structure.
                _ => (0..PAGE_SIZE).map(|i| (i % 2) as u8).collect(),
            };
            assert_eq!(
                rle_len(&page),
                rle_compress(&page).map(|v| v.len()),
                "sizer diverged from compressor on a {}-byte buffer",
                page.len()
            );
        });
    }

    #[test]
    fn stored_page_size_follows_store_policy() {
        assert_eq!(stored_page_size(&PageContents::Zero), Some(0));
        assert_eq!(
            stored_page_size(&PageContents::Token(7)),
            Some(TOKEN_STORED_BYTES)
        );
        // Full compressible page: exactly what the store would write.
        let full = PageContents::from_byte_fill(3);
        let expect = rle_compress(&vec![3u8; PAGE_SIZE]).unwrap().len();
        assert_eq!(stored_page_size(&full), Some(expect));
        // Full incompressible page: stored raw.
        assert_eq!(
            stored_page_size(&PageContents::from_bytes(&noise_page(9))),
            None
        );
        // Sub-page payloads never take the RLE path, however repetitive:
        // `CompressedStore` frames them raw, so pools must charge raw too.
        // (`from_bytes` pads to a full page, so build the payload raw.)
        assert_eq!(
            stored_page_size(&PageContents::Bytes(vec![5u8; 512].into_boxed_slice())),
            None
        );
    }

    /// Truncating a valid compressed frame anywhere must yield an error
    /// or a different page — never a silently-wrong success.
    #[test]
    fn prop_truncated_frames_never_decode_silently() {
        fluidmem_sim::prop::forall("truncated-frame-detection", 64, |rng| {
            let fill = (rng.gen_u64() >> 40) as u8;
            let page = vec![fill; PAGE_SIZE];
            let c = rle_compress(&page).expect("uniform page compresses");
            let cut = rng.gen_range(0, c.len() as u64) as usize;
            match decompress_contents(PageContents::Bytes(c[..cut].to_vec().into())) {
                Err(KvError::Corruption(_)) => {}
                Ok(decoded) => panic!("truncation at {cut} decoded silently: {decoded:?}"),
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        });
    }
}
