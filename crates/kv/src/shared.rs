//! A shareable handle to one store (many monitors, one remote memory).

use std::cell::RefCell;
use std::rc::Rc;

use fluidmem_coord::PartitionId;
use fluidmem_mem::PageContents;

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::StoreStats;
use crate::store::KeyValueStore;
use fluidmem_telemetry::Registry;

/// A cheaply clonable handle to a single underlying store, so multiple
/// monitors — e.g. the source and destination hypervisors of a live
/// migration, or "multiple VMs \[sharing\] the same key-value store"
/// (§IV) — operate on the *same* remote memory.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::{DramStore, ExternalKey, KeyValueStore, SharedStore};
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let clock = SimClock::new();
/// let shared = SharedStore::new(Box::new(DramStore::new(
///     1 << 24,
///     clock.clone(),
///     SimRng::seed_from_u64(1),
/// )));
/// let mut host_a = shared.handle();
/// let mut host_b = shared.handle();
/// let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
/// host_a.put(key, PageContents::Token(7))?;
/// assert_eq!(host_b.get(key)?, PageContents::Token(7));
/// # Ok::<(), fluidmem_kv::KvError>(())
/// ```
#[derive(Clone)]
pub struct SharedStore {
    inner: Rc<RefCell<Box<dyn KeyValueStore>>>,
}

impl SharedStore {
    /// Wraps a store for sharing.
    pub fn new(store: Box<dyn KeyValueStore>) -> Self {
        SharedStore {
            inner: Rc::new(RefCell::new(store)),
        }
    }

    /// Another handle to the same store.
    pub fn handle(&self) -> SharedStore {
        self.clone()
    }
}

impl KeyValueStore for SharedStore {
    fn name(&self) -> &'static str {
        "shared"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        self.inner.borrow_mut().put(key, value)
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        self.inner.borrow_mut().delete(key)
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        self.inner.borrow_mut().begin_get(key)
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        self.inner.borrow_mut().finish_get(pending)
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        self.inner.borrow_mut().begin_multi_write(batch)
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        self.inner.borrow_mut().finish_write(pending)
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        self.inner.borrow_mut().drop_partition(partition)
    }

    fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.inner.borrow().contains(key)
    }

    fn partition_keys(&self, partition: PartitionId) -> Vec<ExternalKey> {
        self.inner.borrow().partition_keys(partition)
    }

    fn peek(&self, key: ExternalKey) -> Option<PageContents> {
        self.inner.borrow().peek(key)
    }

    fn ingest(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        self.inner.borrow_mut().ingest(key, value)
    }

    fn expunge(&mut self, key: ExternalKey) -> bool {
        self.inner.borrow_mut().expunge(key)
    }

    fn stats(&self) -> StoreStats {
        self.inner.borrow().stats()
    }

    fn instrument(&mut self, registry: &Registry) {
        self.inner.borrow_mut().instrument(registry)
    }
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStore")
            .field("inner", &self.inner.borrow().name())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramStore;
    use fluidmem_mem::Vpn;
    use fluidmem_sim::{SimClock, SimRng};

    #[test]
    fn handles_see_each_others_writes() {
        let clock = SimClock::new();
        let shared = SharedStore::new(Box::new(DramStore::new(
            1 << 20,
            clock,
            SimRng::seed_from_u64(1),
        )));
        let mut a = shared.handle();
        let mut b = shared.handle();
        let key = ExternalKey::new(Vpn::new(3), PartitionId::new(1));
        a.put(key, PageContents::Token(42)).unwrap();
        assert!(b.contains(key));
        assert!(b.delete(key));
        assert!(!a.contains(key));
    }

    #[test]
    fn stats_are_shared() {
        let clock = SimClock::new();
        let shared = SharedStore::new(Box::new(DramStore::new(
            1 << 20,
            clock,
            SimRng::seed_from_u64(1),
        )));
        let mut a = shared.handle();
        let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
        a.put(key, PageContents::Zero).unwrap();
        assert_eq!(shared.handle().stats().puts, 1);
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn two_handle_stats_aggregate_without_double_counting() {
        use fluidmem_telemetry::consts;

        let clock = SimClock::new();
        let shared = SharedStore::new(Box::new(DramStore::new(
            1 << 20,
            clock,
            SimRng::seed_from_u64(1),
        )));
        let mut a = shared.handle();
        let mut b = shared.handle();

        // Each handle attaches its own registry — the multi-monitor
        // shape, where every monitor instruments its store clone.
        let reg_a = Registry::new();
        let reg_b = Registry::new();
        a.instrument(&reg_a);
        b.instrument(&reg_b);

        // 3 puts + 2 gets through `a`, 5 puts + 4 gets through `b`.
        let key = |i: u64| ExternalKey::new(Vpn::new(i), PartitionId::new(0));
        for i in 0..3 {
            a.put(key(i), PageContents::Token(i)).unwrap();
        }
        for i in 3..8 {
            b.put(key(i), PageContents::Token(i)).unwrap();
        }
        for i in 0..2 {
            a.get(key(i)).unwrap();
        }
        for i in 2..6 {
            b.get(key(i)).unwrap();
        }

        // One inner store, one set of counters: every view agrees on the
        // sum of per-handle issued ops.
        let stats = shared.stats();
        assert_eq!(stats.puts, 3 + 5);
        assert_eq!(stats.gets, 2 + 4);
        let labels = |op: &'static str| [(consts::LABEL_STORE, "dram"), (consts::LABEL_OP, op)];
        for reg in [&reg_a, &reg_b] {
            assert_eq!(reg.counter(consts::STORE_OPS, &labels("put")).get(), 8);
            assert_eq!(reg.counter(consts::STORE_OPS, &labels("get")).get(), 6);
            // Latency histograms adopt the same handles: one observation
            // per issued op, not one per attached handle.
            let h = reg.histogram(consts::STORE_OP_LATENCY_US, &labels("get"));
            assert_eq!(h.snapshot().count, 6);
        }
    }

    #[test]
    fn reattaching_a_handle_neither_resets_nor_clobbers_counts() {
        use fluidmem_telemetry::consts;

        let clock = SimClock::new();
        let shared = SharedStore::new(Box::new(DramStore::new(
            1 << 20,
            clock,
            SimRng::seed_from_u64(1),
        )));
        let mut a = shared.handle();
        let mut b = shared.handle();

        let key = ExternalKey::new(Vpn::new(9), PartitionId::new(0));
        a.put(key, PageContents::Zero).unwrap();
        a.get(key).unwrap();

        // Both handles attach to the SAME registry, the second one after
        // ops already flowed: adoption must be idempotent (same live
        // handles), carrying accumulated values instead of replacing
        // them with fresh zeroed instruments.
        let reg = Registry::new();
        a.instrument(&reg);
        b.instrument(&reg);
        let gets = reg.counter(
            consts::STORE_OPS,
            &[(consts::LABEL_STORE, "dram"), (consts::LABEL_OP, "get")],
        );
        assert_eq!(gets.get(), 1, "pre-attach ops carried over exactly once");
        b.get(key).unwrap();
        assert_eq!(gets.get(), 2, "post-attach ops flow through either handle");
        assert_eq!(shared.stats().gets, 2);
    }
}
