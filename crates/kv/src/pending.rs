//! Handles for in-flight asynchronous store operations.

use fluidmem_mem::PageContents;
use fluidmem_sim::SimInstant;

use crate::error::KvError;
use crate::key::ExternalKey;

/// An in-flight asynchronous read (the transport "top half" has been
/// issued; the response lands at [`completes_at`](PendingGet::completes_at)).
///
/// The value is captured when the request reaches the server, so later
/// writes do not retroactively change an in-flight response.
#[derive(Debug)]
#[must_use = "an issued read must be finished with KeyValueStore::finish_get"]
pub struct PendingGet {
    pub(crate) key: ExternalKey,
    pub(crate) result: Result<PageContents, KvError>,
    pub(crate) issued_at: SimInstant,
    pub(crate) completes_at: SimInstant,
}

impl PendingGet {
    /// The key being read.
    pub fn key(&self) -> ExternalKey {
        self.key
    }

    /// When the request was issued (the top half's start).
    pub fn issued_at(&self) -> SimInstant {
        self.issued_at
    }

    /// When the response is available to the bottom half.
    pub fn completes_at(&self) -> SimInstant {
        self.completes_at
    }
}

/// An in-flight asynchronous (multi-)write.
#[derive(Debug)]
#[must_use = "an issued write must be finished with KeyValueStore::finish_write"]
pub struct PendingWrite {
    pub(crate) keys: Vec<ExternalKey>,
    pub(crate) issued_at: SimInstant,
    pub(crate) completes_at: SimInstant,
}

impl PendingWrite {
    /// The keys being written.
    pub fn keys(&self) -> &[ExternalKey] {
        &self.keys
    }

    /// When the batch was issued (the top half's start).
    pub fn issued_at(&self) -> SimInstant {
        self.issued_at
    }

    /// When the write is durable at the server.
    pub fn completes_at(&self) -> SimInstant {
        self.completes_at
    }
}
