//! Key-value store backends for FluidMem's remote memory.
//!
//! FluidMem "interfaces with key-value stores via a generic API that
//! supports partitions and allows multiple VMs to share the same key-value
//! store" (paper §IV). This crate provides that API and three backends
//! matching the paper's evaluation:
//!
//! * [`RamCloudStore`] — a log-structured store with a hash-table index,
//!   a segment cleaner, and RAMCloud's `multiRead`/`multiWrite` batch
//!   operations, reached over a kernel-bypass InfiniBand-verbs transport
//!   model (~10 µs round trips; Table I's `READ_PAGE` = 15.62 µs).
//! * [`MemcachedStore`] — a slab-allocated cache with per-class LRU
//!   eviction over a TCP/IP-over-InfiniBand transport model (tens of µs).
//!   Like real memcached it *evicts under memory pressure*, which the
//!   monitor must treat as data loss.
//! * [`DramStore`] — an in-process table (the paper's "FluidMem DRAM"
//!   baseline) with sub-microsecond access.
//!
//! All stores implement [`KeyValueStore`], including the split
//! *top-half/bottom-half* asynchronous API ([`KeyValueStore::begin_get`] /
//! [`KeyValueStore::finish_get`]) that the monitor's §V-B optimizations
//! interleave with `UFFD_REMAP`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod compress;
mod dram;
mod error;
mod fault;
mod key;
mod memcached;
mod pending;
mod ramcloud;
mod replicated;
mod retry;
mod ring;
mod shared;
mod stats;
mod store;
mod transport;

pub use cluster::{AuditReport, ClusterCounters, ClusterHandle, ClusterStore};
pub use compress::{
    rle_compress, rle_decompress, rle_len, stored_page_size, CompressedStore, TOKEN_STORED_BYTES,
};
pub use dram::DramStore;
pub use error::KvError;
pub use fault::FaultInjectingStore;
pub use key::ExternalKey;
pub use memcached::MemcachedStore;
pub use pending::{PendingGet, PendingWrite};
pub use ramcloud::RamCloudStore;
pub use replicated::ReplicatedStore;
pub use retry::{run_with_retries, run_with_retries_from, RetryPolicy};
pub use ring::{HashRing, NodeId};
pub use shared::SharedStore;
pub use stats::{StoreCounters, StoreStats};
pub use store::KeyValueStore;
pub use transport::TransportModel;
