//! Network transport cost models.

use fluidmem_sim::{LatencyModel, SimDuration, SimRng};

/// A network transport between the monitor and a remote store.
///
/// Three calibrations match the paper's test platform (§VI-A): native
/// InfiniBand verbs for RAMCloud, IP-over-InfiniBand TCP for Memcached,
/// and an in-process "transport" for the local DRAM baseline.
///
/// The request pipeline is modeled in halves so the store's asynchronous
/// client API can charge them separately:
///
/// * **top half** (request marshal + send doorbell) — paid when an async
///   op begins;
/// * **round trip + server time** — elapses in the background;
/// * **bottom half** (completion poll + payload copy) — paid when the op
///   is finished.
///
/// # Example
///
/// ```
/// use fluidmem_kv::TransportModel;
///
/// let ib = TransportModel::infiniband_verbs();
/// let tcp = TransportModel::ip_over_ib();
/// assert!(tcp.mean_read_us(4096) > ib.mean_read_us(4096));
/// ```
#[derive(Debug, Clone)]
pub struct TransportModel {
    name: &'static str,
    top_half: LatencyModel,
    round_trip: LatencyModel,
    server_op: LatencyModel,
    bottom_half: LatencyModel,
    /// Payload cost per KiB on the wire.
    per_kib: LatencyModel,
}

impl TransportModel {
    /// Kernel-bypass InfiniBand verbs (FDR 56 Gb/s): the RAMCloud
    /// transport. Calibrated so a 4 KB read averages ≈15.6 µs end to end
    /// (Table I `READ_PAGE`) of which ≈10 µs is the network wait (§V-B).
    pub fn infiniband_verbs() -> Self {
        TransportModel {
            name: "ib-verbs",
            top_half: LatencyModel::normal_us(1.3, 0.2),
            round_trip: LatencyModel::lognormal_mean_p99_us(7.3, 11.0),
            server_op: LatencyModel::normal_us(2.0, 0.3),
            bottom_half: LatencyModel::normal_us(1.2, 0.2),
            per_kib: LatencyModel::constant_ns(480),
        }
    }

    /// TCP over IP-over-InfiniBand: the Memcached transport. A 4 KB read
    /// averages ≈70 µs (kernel TCP stack on both ends), matching the
    /// ≈65.8 µs pmbench average the paper reports for the Memcached
    /// backend.
    pub fn ip_over_ib() -> Self {
        TransportModel {
            name: "ipoib-tcp",
            top_half: LatencyModel::normal_us(4.5, 0.8),
            round_trip: LatencyModel::lognormal_mean_p99_us(48.0, 110.0),
            server_op: LatencyModel::normal_us(6.0, 1.0),
            bottom_half: LatencyModel::normal_us(3.5, 0.6),
            per_kib: LatencyModel::constant_ns(1500),
        }
    }

    /// In-process access for the local DRAM baseline: a table lookup and
    /// a 4 KB copy.
    pub fn local() -> Self {
        TransportModel {
            name: "local",
            top_half: LatencyModel::normal_us(0.25, 0.05),
            round_trip: LatencyModel::zero(),
            server_op: LatencyModel::normal_us(0.5, 0.1),
            bottom_half: LatencyModel::normal_us(0.2, 0.05),
            per_kib: LatencyModel::constant_ns(180),
        }
    }

    /// The transport's short name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Cost of the top half (request marshal/post).
    pub fn sample_top_half(&self, rng: &mut SimRng) -> SimDuration {
        self.top_half.sample(rng)
    }

    /// Background time until a single-object response of `bytes` payload
    /// is available: round trip + server processing + wire time.
    pub fn sample_flight(&self, rng: &mut SimRng, bytes: usize) -> SimDuration {
        self.round_trip.sample(rng) + self.server_op.sample(rng) + self.wire(rng, bytes)
    }

    /// Background time for a batch of `count` objects totalling `bytes`:
    /// one round trip, per-object server time, shared wire.
    pub fn sample_batch_flight(&self, rng: &mut SimRng, count: usize, bytes: usize) -> SimDuration {
        let mut d = self.round_trip.sample(rng) + self.wire(rng, bytes);
        for _ in 0..count {
            d += self.server_op.sample(rng);
        }
        d
    }

    /// Cost of the bottom half (completion poll + payload copy).
    pub fn sample_bottom_half(&self, rng: &mut SimRng) -> SimDuration {
        self.bottom_half.sample(rng)
    }

    /// A per-operation deadline suited to this transport: well past the
    /// p99 of a `bytes`-sized read, so only genuinely lost requests or
    /// responses trip it. Used by
    /// [`FaultInjectingStore`](crate::FaultInjectingStore) and retrying
    /// clients (see [`RetryPolicy`](crate::RetryPolicy)).
    pub fn suggested_deadline(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros_f64(self.mean_read_us(bytes) * 8.0)
    }

    /// Analytic mean of a synchronous read of `bytes` in microseconds.
    pub fn mean_read_us(&self, bytes: usize) -> f64 {
        self.top_half.mean_us()
            + self.round_trip.mean_us()
            + self.server_op.mean_us()
            + self.bottom_half.mean_us()
            + self.per_kib.mean_us() * (bytes as f64 / 1024.0)
    }

    fn wire(&self, rng: &mut SimRng, bytes: usize) -> SimDuration {
        let kib = bytes.div_ceil(1024) as u64;
        let per = self.per_kib.sample(rng);
        per * kib
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::stats::Sample;

    fn mean_sync_read(t: &TransportModel, n: usize) -> f64 {
        let mut rng = SimRng::seed_from_u64(3);
        let mut s = Sample::new();
        for _ in 0..n {
            let d = t.sample_top_half(&mut rng)
                + t.sample_flight(&mut rng, 4096)
                + t.sample_bottom_half(&mut rng);
            s.record(d.as_micros_f64());
        }
        s.mean()
    }

    #[test]
    fn ib_verbs_calibration() {
        // Table I READ_PAGE is 15.62µs through the monitor; the raw
        // transport read should be a little under that.
        let m = mean_sync_read(&TransportModel::infiniband_verbs(), 20_000);
        assert!((m - 13.7).abs() < 1.0, "ib read mean {m}");
    }

    #[test]
    fn ipoib_is_several_times_slower() {
        let ib = mean_sync_read(&TransportModel::infiniband_verbs(), 5_000);
        let tcp = mean_sync_read(&TransportModel::ip_over_ib(), 5_000);
        assert!(tcp > 3.0 * ib, "tcp {tcp} vs ib {ib}");
    }

    #[test]
    fn local_is_sub_2us() {
        let m = mean_sync_read(&TransportModel::local(), 5_000);
        assert!(m < 2.5, "local read mean {m}");
    }

    #[test]
    fn batch_amortizes_round_trips() {
        let t = TransportModel::infiniband_verbs();
        let mut rng = SimRng::seed_from_u64(4);
        let mut single = SimDuration::ZERO;
        for _ in 0..16 {
            single += t.sample_flight(&mut rng, 4096);
        }
        let batch = t.sample_batch_flight(&mut rng, 16, 16 * 4096);
        assert!(
            batch < single / 2,
            "batched flight {batch} should beat 16 singles {single}"
        );
    }

    #[test]
    fn bigger_payloads_cost_more_wire_time() {
        let t = TransportModel::ip_over_ib();
        assert!(t.mean_read_us(64 * 1024) > t.mean_read_us(4096) + 50.0);
    }
}
