//! The generic key-value store API (paper §IV).

use fluidmem_mem::PageContents;
use fluidmem_telemetry::Registry;

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::StoreStats;

/// The generic, partition-aware store interface FluidMem's monitor uses.
///
/// Two call styles are offered:
///
/// * **synchronous** — [`get`](KeyValueStore::get) /
///   [`put`](KeyValueStore::put) charge the full round trip on the
///   caller's critical path (the monitor's unoptimized "Default" mode in
///   Table II);
/// * **asynchronous top/bottom halves** —
///   [`begin_get`](KeyValueStore::begin_get) issues the request and
///   returns immediately; the response lands in the background and
///   [`finish_get`](KeyValueStore::finish_get) waits only for whatever
///   remains. The §V-B optimizations run `UFFD_REMAP` and LRU bookkeeping
///   between the halves, hiding the network wait.
///
/// Implementations are single-writer (the monitor) in this reproduction;
/// multiple VMs share a store through distinct
/// [`partition`](ExternalKey::partition)s.
pub trait KeyValueStore {
    /// Short backend name (`"ramcloud"`, `"memcached"`, `"dram"`).
    fn name(&self) -> &'static str;

    /// Synchronous read.
    ///
    /// # Errors
    ///
    /// [`KvError::NotFound`] if the key is absent (or was evicted, for
    /// cache-style backends).
    fn get(&mut self, key: ExternalKey) -> Result<PageContents, KvError> {
        let pending = self.begin_get(key);
        self.finish_get(pending)
    }

    /// Synchronous single-object write.
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfCapacity`] if the store cannot accept the object.
    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError>;

    /// Removes an object; returns whether it existed.
    fn delete(&mut self, key: ExternalKey) -> bool;

    /// Synchronous batch write (RAMCloud `multiWrite`): one round trip
    /// for the whole batch.
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfCapacity`] if the store cannot accept the batch.
    fn multi_write(&mut self, batch: Vec<(ExternalKey, PageContents)>) -> Result<(), KvError> {
        let pending = self.begin_multi_write(batch)?;
        self.finish_write(pending);
        Ok(())
    }

    /// Issues an asynchronous read (top half). The caller may do other
    /// work before calling [`finish_get`](KeyValueStore::finish_get).
    fn begin_get(&mut self, key: ExternalKey) -> PendingGet;

    /// Completes an asynchronous read (bottom half), waiting in virtual
    /// time only if the response has not yet arrived.
    ///
    /// # Errors
    ///
    /// [`KvError::NotFound`] if the key was absent when the server
    /// processed the request.
    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError>;

    /// Issues an asynchronous batch write (top half).
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfCapacity`] if the store cannot accept the batch.
    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError>;

    /// Completes an asynchronous write, waiting if necessary.
    fn finish_write(&mut self, pending: PendingWrite);

    /// Drops every object in a partition (VM shutdown).
    fn drop_partition(&mut self, partition: fluidmem_coord::PartitionId) -> u64;

    /// Number of live objects.
    fn len(&self) -> usize;

    /// Whether the store holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Test hook: whether a key is present, without charging time.
    fn contains(&self, key: ExternalKey) -> bool;

    /// Maintenance hook: every key currently stored under `partition`,
    /// sorted ascending so callers iterate deterministically. Charges no
    /// virtual time — this is the snapshot a cluster migration copier
    /// takes, off the fault path. The default (for simple test doubles)
    /// reports nothing.
    fn partition_keys(&self, _partition: fluidmem_coord::PartitionId) -> Vec<ExternalKey> {
        Vec::new()
    }

    /// Maintenance hook: the current value of a key, without charging
    /// time or consuming randomness. The migration copier reads pages
    /// through this so a background copy never advances the shared
    /// clock; transfer time is accounted on the copier's own timeline.
    fn peek(&self, _key: ExternalKey) -> Option<PageContents> {
        None
    }

    /// Maintenance hook: installs a value without charging time (the
    /// receiving side of a migration copy).
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfCapacity`] if the store cannot accept the object;
    /// [`KvError::Unavailable`] from stores that do not support
    /// maintenance ingestion (the default).
    fn ingest(&mut self, _key: ExternalKey, _value: PageContents) -> Result<(), KvError> {
        Err(KvError::Unavailable)
    }

    /// Maintenance hook: removes a key without charging time (propagating
    /// a concurrent delete to a migration target); returns whether it
    /// existed. The default removes nothing.
    fn expunge(&mut self, _key: ExternalKey) -> bool {
        false
    }

    /// Operation counters.
    fn stats(&self) -> StoreStats;

    /// Registers this store's live counters in `registry` (see
    /// [`StoreCounters::register`](crate::StoreCounters::register)).
    /// Wrapper stores forward to what they wrap; the default is a no-op
    /// so simple test doubles need not care.
    fn instrument(&mut self, _registry: &Registry) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_object(_s: &mut dyn KeyValueStore) {}
    }
}
