//! A fault-injecting wrapper around any [`KeyValueStore`].
//!
//! [`FaultInjectingStore`] interposes on the store operations the
//! monitor's hot path issues (`put`, `begin_get`/`finish_get`,
//! `begin_multi_write`) and perturbs them according to a deterministic
//! [`FaultPlan`](fluidmem_sim::FaultPlan). Each fault kind has precise
//! semantics so recovery code can be tested honestly:
//!
//! * **Drop** — the request never reaches the server. The operation is
//!   *not* applied; the caller pays the per-op deadline and sees
//!   [`KvError::Timeout`].
//! * **Timeout** — the request reaches the server and *is applied*, but
//!   the response is lost. The caller pays the deadline and sees
//!   [`KvError::Timeout`]. Page writes are idempotent, so retrying is
//!   safe; a retried read sees the written data.
//! * **Duplicate** — the request is delivered (and applied) twice.
//!   Harmless for idempotent page operations, but the extra server work
//!   costs time.
//! * **SlowReplica** — the server is degraded; the operation succeeds
//!   with its in-flight time stretched by the plan's slowdown factor.
//! * **TransientError** — the server refuses quickly (overload,
//!   mid-recovery). The operation is *not* applied; the caller sees
//!   [`KvError::Unavailable`] after a fraction of the deadline.
//!
//! Only faultable operations (`put`, `begin_get`, `begin_multi_write`)
//! consume fault-plan decisions, so scripted [`FaultEvent`] indices
//! count exactly those operations in issue order.
//!
//! [`FaultEvent`]: fluidmem_sim::FaultEvent

use fluidmem_coord::PartitionId;
use fluidmem_mem::PageContents;
use fluidmem_sim::{FaultKind, FaultPlan, FaultPlanStats, SimClock, SimDuration, SimInstant};

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::StoreStats;
use crate::store::KeyValueStore;
use crate::transport::TransportModel;
use fluidmem_telemetry::{consts, Counter, Registry};

/// Wraps a store with deterministic transport-fault injection.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::{DramStore, ExternalKey, FaultInjectingStore, KeyValueStore, KvError};
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::{FaultEvent, FaultKind, FaultPlan, SimClock, SimRng};
///
/// let clock = SimClock::new();
/// let inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
/// let plan = FaultPlan::new(SimRng::seed_from_u64(2))
///     .script(FaultEvent { at_op: 0, kind: FaultKind::TransientError });
/// let mut store = FaultInjectingStore::new(Box::new(inner), plan, clock);
/// let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
/// // Op 0 is refused; the retry (op 1) succeeds.
/// assert_eq!(store.put(key, PageContents::Token(9)), Err(KvError::Unavailable));
/// assert_eq!(store.put(key, PageContents::Token(9)), Ok(()));
/// ```
pub struct FaultInjectingStore {
    inner: Box<dyn KeyValueStore>,
    plan: FaultPlan,
    clock: SimClock,
    deadline: SimDuration,
    ops: u64,
    faults_injected: Counter,
    timeouts: Counter,
    unavailables: Counter,
}

impl FaultInjectingStore {
    /// Wraps `inner` with the given fault plan and a default 400 µs
    /// per-op deadline.
    pub fn new(inner: Box<dyn KeyValueStore>, plan: FaultPlan, clock: SimClock) -> Self {
        FaultInjectingStore {
            inner,
            plan,
            clock,
            deadline: SimDuration::from_micros(400),
            ops: 0,
            faults_injected: Counter::new(),
            timeouts: Counter::new(),
            unavailables: Counter::new(),
        }
    }

    /// Wraps `inner`, deriving the deadline from the transport the
    /// store is reached over (see [`TransportModel::suggested_deadline`]).
    pub fn with_transport(
        inner: Box<dyn KeyValueStore>,
        plan: FaultPlan,
        clock: SimClock,
        transport: &TransportModel,
    ) -> Self {
        let deadline = transport.suggested_deadline(fluidmem_mem::PAGE_SIZE);
        FaultInjectingStore::new(inner, plan, clock).with_deadline(deadline)
    }

    /// Overrides the per-op deadline.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = deadline;
        self
    }

    /// The per-op deadline charged for lost requests/responses.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Counts of faults injected so far, by kind.
    pub fn fault_stats(&self) -> FaultPlanStats {
        self.plan.stats()
    }

    /// Faultable operations issued so far (the index space scripted
    /// [`FaultEvent`](fluidmem_sim::FaultEvent)s address).
    pub fn ops_issued(&self) -> u64 {
        self.ops
    }

    /// Read access to the wrapped store.
    pub fn inner(&self) -> &dyn KeyValueStore {
        self.inner.as_ref()
    }

    fn next_fault(&mut self) -> Option<FaultKind> {
        let fault = self.plan.decide(self.ops);
        self.ops += 1;
        if fault.is_some() {
            self.faults_injected.inc();
        }
        fault
    }

    /// Stretches the in-flight remainder of an async completion by the
    /// plan's slowdown factor.
    fn stretched(&self, completes_at: SimInstant) -> SimInstant {
        let now = self.clock.now();
        let remaining = completes_at.saturating_since(now).as_nanos() as f64;
        now + SimDuration::from_nanos((remaining * self.plan.slowdown()) as u64)
    }

    /// Cost of a fast server refusal.
    fn refusal_cost(&self) -> SimDuration {
        self.deadline / 8
    }
}

impl KeyValueStore for FaultInjectingStore {
    fn name(&self) -> &'static str {
        "fault-injecting"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        match self.next_fault() {
            None => self.inner.put(key, value),
            Some(FaultKind::Drop) => {
                self.clock.advance(self.deadline);
                self.timeouts.inc();
                Err(KvError::Timeout)
            }
            Some(FaultKind::Timeout) => {
                let issued_at = self.clock.now();
                self.inner.put(key, value)?;
                self.clock.advance_to(issued_at + self.deadline);
                self.timeouts.inc();
                Err(KvError::Timeout)
            }
            Some(FaultKind::Duplicate) => {
                self.inner.put(key, value.clone())?;
                self.inner.put(key, value)
            }
            Some(FaultKind::SlowReplica) => {
                let issued_at = self.clock.now();
                let result = self.inner.put(key, value);
                let extra = self.clock.elapsed_since(issued_at).as_nanos() as f64
                    * (self.plan.slowdown() - 1.0);
                self.clock.advance(SimDuration::from_nanos(extra as u64));
                result
            }
            Some(FaultKind::TransientError) => {
                self.clock.advance(self.refusal_cost());
                self.unavailables.inc();
                Err(KvError::Unavailable)
            }
            Some(FaultKind::Fatal) => {
                self.clock.advance(self.refusal_cost());
                Err(KvError::Corruption("injected fatal fault"))
            }
        }
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        self.inner.delete(key)
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        match self.next_fault() {
            None => self.inner.begin_get(key),
            // Reads have no server-side effect, so a lost request and a
            // lost response are client-identical: the deadline expires.
            Some(FaultKind::Drop) | Some(FaultKind::Timeout) => {
                self.timeouts.inc();
                PendingGet {
                    key,
                    result: Err(KvError::Timeout),
                    issued_at: self.clock.now(),
                    completes_at: self.clock.now() + self.deadline,
                }
            }
            // A duplicated read response is de-duplicated client-side
            // for free; only the plan's counters notice.
            Some(FaultKind::Duplicate) => self.inner.begin_get(key),
            Some(FaultKind::SlowReplica) => {
                let mut pending = self.inner.begin_get(key);
                pending.completes_at = self.stretched(pending.completes_at);
                pending
            }
            Some(FaultKind::TransientError) => {
                self.unavailables.inc();
                PendingGet {
                    key,
                    result: Err(KvError::Unavailable),
                    issued_at: self.clock.now(),
                    completes_at: self.clock.now() + self.refusal_cost(),
                }
            }
            // A non-retryable refusal: the stored object is damaged in
            // place, so the error ships with the completion.
            Some(FaultKind::Fatal) => PendingGet {
                key,
                result: Err(KvError::Corruption("injected fatal fault")),
                issued_at: self.clock.now(),
                completes_at: self.clock.now() + self.refusal_cost(),
            },
        }
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        self.inner.finish_get(pending)
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        match self.next_fault() {
            None => self.inner.begin_multi_write(batch),
            Some(FaultKind::Drop) => {
                self.clock.advance(self.deadline);
                self.timeouts.inc();
                Err(KvError::Timeout)
            }
            Some(FaultKind::Timeout) => {
                // The batch lands server-side; only the ack is lost.
                let issued_at = self.clock.now();
                let pending = self.inner.begin_multi_write(batch)?;
                self.inner.finish_write(pending);
                self.clock.advance_to(issued_at + self.deadline);
                self.timeouts.inc();
                Err(KvError::Timeout)
            }
            Some(FaultKind::Duplicate) => {
                let first = self.inner.begin_multi_write(batch.clone())?;
                self.inner.finish_write(first);
                self.inner.begin_multi_write(batch)
            }
            Some(FaultKind::SlowReplica) => {
                let mut pending = self.inner.begin_multi_write(batch)?;
                pending.completes_at = self.stretched(pending.completes_at);
                Ok(pending)
            }
            Some(FaultKind::TransientError) => {
                self.clock.advance(self.refusal_cost());
                self.unavailables.inc();
                Err(KvError::Unavailable)
            }
            Some(FaultKind::Fatal) => {
                self.clock.advance(self.refusal_cost());
                Err(KvError::Corruption("injected fatal fault"))
            }
        }
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        self.inner.finish_write(pending)
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        self.inner.drop_partition(partition)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.inner.contains(key)
    }

    // Maintenance traffic is out-of-band (a copier's private channel),
    // so it is not faultable and consumes no fault-plan decisions.
    fn partition_keys(&self, partition: PartitionId) -> Vec<ExternalKey> {
        self.inner.partition_keys(partition)
    }

    fn peek(&self, key: ExternalKey) -> Option<PageContents> {
        self.inner.peek(key)
    }

    fn ingest(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        self.inner.ingest(key, value)
    }

    fn expunge(&mut self, key: ExternalKey) -> bool {
        self.inner.expunge(key)
    }

    fn stats(&self) -> StoreStats {
        let mut stats = self.inner.stats();
        stats.faults_injected += self.faults_injected.get();
        stats.timeouts += self.timeouts.get();
        stats.unavailables += self.unavailables.get();
        stats
    }

    fn instrument(&mut self, registry: &Registry) {
        self.inner.instrument(registry);
        for (counter, op) in [
            (&self.faults_injected, "fault_injected"),
            (&self.timeouts, "timeout"),
            (&self.unavailables, "unavailable"),
        ] {
            registry.adopt_counter(
                consts::STORE_OPS,
                &[(consts::LABEL_STORE, self.name()), (consts::LABEL_OP, op)],
                counter,
            );
        }
    }
}

impl std::fmt::Debug for FaultInjectingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjectingStore")
            .field("inner", &self.inner.name())
            .field("deadline", &self.deadline)
            .field("ops", &self.ops)
            .field("injected", &self.plan.stats().total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramStore;
    use fluidmem_mem::Vpn;
    use fluidmem_sim::{FaultEvent, SimRng};

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    fn scripted(clock: &SimClock, events: Vec<FaultEvent>) -> FaultInjectingStore {
        let inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        let mut plan = FaultPlan::new(SimRng::seed_from_u64(2));
        for e in events {
            plan = plan.script(e);
        }
        FaultInjectingStore::new(Box::new(inner), plan, clock.clone())
    }

    fn event(at_op: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent { at_op, kind }
    }

    #[test]
    fn clean_plan_is_transparent() {
        let clock = SimClock::new();
        let mut s = scripted(&clock, vec![]);
        s.put(key(1), PageContents::Token(7)).unwrap();
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(7));
        assert_eq!(s.stats().faults_injected, 0);
    }

    #[test]
    fn dropped_put_is_not_applied_and_costs_the_deadline() {
        let clock = SimClock::new();
        let mut s = scripted(&clock, vec![event(0, FaultKind::Drop)]);
        let t0 = clock.now();
        assert_eq!(s.put(key(1), PageContents::Token(7)), Err(KvError::Timeout));
        assert!(clock.now() - t0 >= s.deadline(), "deadline must elapse");
        assert!(!s.contains(key(1)), "a dropped request never lands");
        assert_eq!(s.stats().timeouts, 1);
    }

    #[test]
    fn timed_out_put_is_applied_server_side() {
        let clock = SimClock::new();
        let mut s = scripted(&clock, vec![event(0, FaultKind::Timeout)]);
        assert_eq!(s.put(key(1), PageContents::Token(7)), Err(KvError::Timeout));
        // The ack was lost but the write happened: a retry-free read
        // already sees the data.
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(7));
    }

    #[test]
    fn duplicate_put_is_idempotent() {
        let clock = SimClock::new();
        let mut s = scripted(&clock, vec![event(0, FaultKind::Duplicate)]);
        s.put(key(1), PageContents::Token(7)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(7));
        // The server applied it twice.
        assert_eq!(s.stats().total_puts(), 2);
    }

    #[test]
    fn slow_replica_stretches_reads_but_returns_data() {
        let clock = SimClock::new();
        let mut s = scripted(&clock, vec![event(1, FaultKind::SlowReplica)]);
        s.put(key(1), PageContents::Token(7)).unwrap();

        let baseline = {
            let clock2 = SimClock::new();
            let mut s2 = scripted(&clock2, vec![]);
            s2.put(key(1), PageContents::Token(7)).unwrap();
            let t0 = clock2.now();
            s2.get(key(1)).unwrap();
            clock2.now() - t0
        };

        let t0 = clock.now();
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(7));
        let slow = clock.now() - t0;
        assert!(
            slow.as_nanos() > baseline.as_nanos() * 2,
            "slow replica {slow} vs baseline {baseline}"
        );
    }

    #[test]
    fn transient_error_is_quick_and_leaves_no_trace() {
        let clock = SimClock::new();
        let mut s = scripted(&clock, vec![event(0, FaultKind::TransientError)]);
        let t0 = clock.now();
        assert_eq!(
            s.put(key(1), PageContents::Token(7)),
            Err(KvError::Unavailable)
        );
        assert!(clock.now() - t0 < s.deadline() / 2, "refusals are fast");
        assert!(!s.contains(key(1)));
        assert_eq!(s.stats().unavailables, 1);
    }

    #[test]
    fn timed_out_multi_write_lands_but_reports_timeout() {
        let clock = SimClock::new();
        let mut s = scripted(&clock, vec![event(0, FaultKind::Timeout)]);
        let batch: Vec<_> = (0..4).map(|i| (key(i), PageContents::Token(i))).collect();
        assert_eq!(s.multi_write(batch), Err(KvError::Timeout));
        for i in 0..4 {
            assert_eq!(s.get(key(i)).unwrap(), PageContents::Token(i));
        }
    }

    #[test]
    fn dropped_read_times_out_then_retry_succeeds() {
        let clock = SimClock::new();
        let mut s = scripted(&clock, vec![event(1, FaultKind::Drop)]);
        s.put(key(1), PageContents::Token(7)).unwrap();
        assert_eq!(s.get(key(1)), Err(KvError::Timeout));
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(7));
        assert_eq!(s.stats().timeouts, 1);
    }

    #[test]
    fn transport_derived_deadline_covers_the_tail() {
        let clock = SimClock::new();
        let inner = DramStore::new(1 << 24, clock.clone(), SimRng::seed_from_u64(1));
        let transport = TransportModel::infiniband_verbs();
        let s = FaultInjectingStore::with_transport(
            Box::new(inner),
            FaultPlan::disabled(),
            clock,
            &transport,
        );
        let mean = SimDuration::from_micros_f64(transport.mean_read_us(4096));
        assert!(
            s.deadline() > mean * 3,
            "deadline {} mean {mean}",
            s.deadline()
        );
    }
}
