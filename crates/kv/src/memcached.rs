//! A Memcached-like slab cache.

use std::collections::{BTreeMap, HashMap};

use fluidmem_coord::PartitionId;
use fluidmem_mem::{PageContents, PAGE_SIZE};
use fluidmem_sim::{SimClock, SimRng};

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::{StoreCounters, StoreStats};
use crate::store::KeyValueStore;
use crate::transport::TransportModel;
use fluidmem_telemetry::Registry;

/// Item overhead (memcached's per-item header + key).
const ITEM_OVERHEAD: usize = 56;

#[derive(Debug)]
struct Item {
    value: PageContents,
    class: usize,
    lru_seq: u64,
}

#[derive(Debug)]
struct SlabClass {
    chunk_size: usize,
    /// LRU ordering: sequence → key. Smallest sequence = coldest.
    lru: BTreeMap<u64, ExternalKey>,
}

/// A Memcached-like store: slab classes with per-class LRU eviction,
/// reached over a TCP (IP-over-InfiniBand) transport (paper §VI-A).
///
/// Unlike [`RamCloudStore`](crate::RamCloudStore), memcached is a *cache*:
/// when memory runs out it silently evicts the least-recently-used item of
/// the incoming item's slab class, and a later `get` simply misses. A page
/// store built on it must size the cache so working pages are never
/// evicted — the reproduction's monitor surfaces an eviction-induced miss
/// as lost-page corruption, matching what would happen in the real system.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::{ExternalKey, KeyValueStore, MemcachedStore};
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let mut store = MemcachedStore::new(64 << 20, SimClock::new(), SimRng::seed_from_u64(1));
/// let key = ExternalKey::new(Vpn::new(0x10), PartitionId::new(0));
/// store.put(key, PageContents::Token(7))?;
/// assert_eq!(store.get(key)?, PageContents::Token(7));
/// # Ok::<(), fluidmem_kv::KvError>(())
/// ```
#[derive(Debug)]
pub struct MemcachedStore {
    classes: Vec<SlabClass>,
    items: HashMap<u64, Item>,
    capacity_bytes: usize,
    used_bytes: usize,
    next_seq: u64,
    transport: TransportModel,
    clock: SimClock,
    rng: SimRng,
    stats: StoreCounters,
}

impl MemcachedStore {
    /// Creates a cache with `capacity_bytes` of slab memory over
    /// IP-over-InfiniBand TCP.
    pub fn new(capacity_bytes: usize, clock: SimClock, rng: SimRng) -> Self {
        Self::with_transport(capacity_bytes, TransportModel::ip_over_ib(), clock, rng)
    }

    /// Creates a cache with an explicit transport model.
    pub fn with_transport(
        capacity_bytes: usize,
        transport: TransportModel,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        // Memcached's default growth factor of 1.25 from 96 bytes.
        let mut classes = Vec::new();
        let mut chunk = 96usize;
        while chunk < 1024 * 1024 {
            classes.push(SlabClass {
                chunk_size: chunk,
                lru: BTreeMap::new(),
            });
            chunk = (chunk as f64 * 1.25) as usize + 8;
        }
        classes.push(SlabClass {
            chunk_size: 1024 * 1024,
            lru: BTreeMap::new(),
        });
        MemcachedStore {
            classes,
            items: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            next_seq: 0,
            transport,
            clock,
            rng,
            stats: StoreCounters::new(),
        }
    }

    /// The slab class whose chunks fit an item of `bytes`.
    fn class_for(&self, bytes: usize) -> usize {
        self.classes
            .iter()
            .position(|c| c.chunk_size >= bytes)
            .unwrap_or(self.classes.len() - 1)
    }

    /// Bytes a stored page occupies (memcached stores whole values; token
    /// pages still logically occupy a page on the wire and in the slab).
    fn item_bytes() -> usize {
        PAGE_SIZE + ITEM_OVERHEAD
    }

    fn touch(&mut self, key: ExternalKey) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(item) = self.items.get_mut(&key.raw()) {
            let class = item.class;
            let old = item.lru_seq;
            item.lru_seq = seq;
            self.classes[class].lru.remove(&old);
            self.classes[class].lru.insert(seq, key);
        }
    }

    fn remove_item(&mut self, key: ExternalKey) -> Option<Item> {
        let item = self.items.remove(&key.raw())?;
        self.classes[item.class].lru.remove(&item.lru_seq);
        self.used_bytes -= self.classes[item.class].chunk_size;
        Some(item)
    }

    fn insert_item(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        let class = self.class_for(Self::item_bytes());
        let chunk = self.classes[class].chunk_size;
        self.remove_item(key);
        // Evict LRU items of this class until the chunk fits.
        while self.used_bytes + chunk > self.capacity_bytes {
            let victim = self.classes[class].lru.iter().next().map(|(_, k)| *k);
            match victim {
                Some(v) => {
                    self.remove_item(v);
                    self.stats.evictions.inc();
                }
                None => return Err(KvError::OutOfCapacity),
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.insert(
            key.raw(),
            Item {
                value,
                class,
                lru_seq: seq,
            },
        );
        self.classes[class].lru.insert(seq, key);
        self.used_bytes += chunk;
        Ok(())
    }

    /// Slab memory currently allocated to items.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }
}

impl KeyValueStore for MemcachedStore {
    fn name(&self) -> &'static str {
        "memcached"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        let cost = self.transport.sample_top_half(&mut self.rng)
            + self
                .transport
                .sample_flight(&mut self.rng, Self::item_bytes())
            + self.transport.sample_bottom_half(&mut self.rng);
        self.clock.advance(cost);
        self.insert_item(key, value)?;
        self.stats.puts.inc();
        self.stats.put_latency.observe(cost);
        Ok(())
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        let cost = self.transport.sample_top_half(&mut self.rng)
            + self.transport.sample_flight(&mut self.rng, 64);
        self.clock.advance(cost);
        let existed = self.remove_item(key).is_some();
        if existed {
            self.stats.deletes.inc();
        }
        existed
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        let issued_at = self.clock.now();
        let top = self.transport.sample_top_half(&mut self.rng);
        self.clock.advance(top);
        let flight = self
            .transport
            .sample_flight(&mut self.rng, Self::item_bytes());
        let result = match self.items.get(&key.raw()) {
            Some(item) => Ok(item.value.clone()),
            None => Err(KvError::NotFound(key)),
        };
        if result.is_ok() {
            self.touch(key);
        }
        PendingGet {
            key,
            result,
            issued_at,
            completes_at: self.clock.now() + flight,
        }
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        self.clock.advance_to(pending.completes_at);
        let bottom = self.transport.sample_bottom_half(&mut self.rng);
        self.clock.advance(bottom);
        self.stats
            .get_latency
            .observe(self.clock.now() - pending.issued_at);
        match pending.result {
            Ok(v) => {
                self.stats.gets.inc();
                Ok(v)
            }
            Err(e) => {
                self.stats.get_misses.inc();
                Err(e)
            }
        }
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        // Memcached has no multiWrite; the client pipelines sets on one
        // connection, paying one round trip plus per-item server time.
        let count = batch.len();
        let issued_at = self.clock.now();
        let top = self.transport.sample_top_half(&mut self.rng);
        self.clock.advance(top);
        let flight =
            self.transport
                .sample_batch_flight(&mut self.rng, count, count * Self::item_bytes());
        let mut keys = Vec::with_capacity(count);
        for (key, value) in batch {
            self.insert_item(key, value)?;
            keys.push(key);
        }
        self.stats.batched_puts.add(count as u64);
        self.stats.multi_writes.inc();
        Ok(PendingWrite {
            keys,
            issued_at,
            completes_at: self.clock.now() + flight,
        })
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        self.clock.advance_to(pending.completes_at);
        let bottom = self.transport.sample_bottom_half(&mut self.rng);
        self.clock.advance(bottom);
        self.stats
            .multi_write_latency
            .observe(self.clock.now() - pending.issued_at);
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        let doomed: Vec<ExternalKey> = self
            .classes
            .iter()
            .flat_map(|c| c.lru.values().copied())
            .filter(|k| k.partition() == partition)
            .collect();
        let n = doomed.len() as u64;
        for key in doomed {
            self.remove_item(key);
        }
        self.stats.deletes.add(n);
        n
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.items.contains_key(&key.raw())
    }

    fn partition_keys(&self, partition: PartitionId) -> Vec<ExternalKey> {
        let mut keys: Vec<ExternalKey> = self
            .items
            .keys()
            .filter(|&&raw| raw & 0xFFF == u64::from(partition.raw()))
            .map(|&raw| ExternalKey::from_raw(raw))
            .collect();
        keys.sort_unstable();
        keys
    }

    fn peek(&self, key: ExternalKey) -> Option<PageContents> {
        self.items.get(&key.raw()).map(|item| item.value.clone())
    }

    fn ingest(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        self.insert_item(key, value)
    }

    fn expunge(&mut self, key: ExternalKey) -> bool {
        self.remove_item(key).is_some()
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    fn instrument(&mut self, registry: &Registry) {
        self.stats.register(registry, self.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_mem::Vpn;

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    fn small_store(items: usize) -> MemcachedStore {
        // Enough slab memory for exactly `items` page items.
        let chunk = {
            let probe = MemcachedStore::new(1 << 20, SimClock::new(), SimRng::seed_from_u64(0));
            probe.classes[probe.class_for(MemcachedStore::item_bytes())].chunk_size
        };
        MemcachedStore::new(chunk * items, SimClock::new(), SimRng::seed_from_u64(1))
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = small_store(8);
        s.put(key(1), PageContents::from_byte_fill(3)).unwrap();
        assert_eq!(s.get(key(1)).unwrap(), PageContents::from_byte_fill(3));
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        let mut s = small_store(3);
        s.put(key(1), PageContents::Token(1)).unwrap();
        s.put(key(2), PageContents::Token(2)).unwrap();
        s.put(key(3), PageContents::Token(3)).unwrap();
        // Touch key 1 so key 2 is the LRU victim.
        s.get(key(1)).unwrap();
        s.put(key(4), PageContents::Token(4)).unwrap();
        assert_eq!(s.stats().evictions, 1);
        assert!(s.contains(key(1)), "recently used item survived");
        assert!(!s.contains(key(2)), "LRU item evicted");
        assert!(matches!(s.get(key(2)), Err(KvError::NotFound(_))));
    }

    #[test]
    fn overwrite_does_not_grow_usage() {
        let mut s = small_store(4);
        s.put(key(1), PageContents::Token(1)).unwrap();
        let used = s.used_bytes();
        s.put(key(1), PageContents::Token(2)).unwrap();
        assert_eq!(s.used_bytes(), used);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn tcp_transport_is_slower_than_ramcloud() {
        let clock = SimClock::new();
        let mut mc = MemcachedStore::new(16 << 20, clock.clone(), SimRng::seed_from_u64(2));
        let t0 = clock.now();
        mc.put(key(1), PageContents::Token(1)).unwrap();
        mc.get(key(1)).unwrap();
        let tcp_cost = clock.now() - t0;

        let clock2 = SimClock::new();
        let mut rc = crate::RamCloudStore::new(16 << 20, clock2.clone(), SimRng::seed_from_u64(2));
        let t0 = clock2.now();
        rc.put(key(1), PageContents::Token(1)).unwrap();
        rc.get(key(1)).unwrap();
        let ib_cost = clock2.now() - t0;

        assert!(
            tcp_cost > ib_cost * 2,
            "memcached {tcp_cost} should be much slower than ramcloud {ib_cost}"
        );
    }

    #[test]
    fn multi_write_pipelines() {
        let mut s = small_store(64);
        let batch: Vec<_> = (0..16).map(|i| (key(i), PageContents::Token(i))).collect();
        s.multi_write(batch).unwrap();
        assert_eq!(s.len(), 16);
        assert_eq!(s.stats().multi_writes, 1);
    }

    #[test]
    fn drop_partition_scoped() {
        let mut s = small_store(8);
        let a = ExternalKey::new(Vpn::new(1), PartitionId::new(3));
        let b = ExternalKey::new(Vpn::new(1), PartitionId::new(4));
        s.put(a, PageContents::Token(1)).unwrap();
        s.put(b, PageContents::Token(2)).unwrap();
        assert_eq!(s.drop_partition(PartitionId::new(3)), 1);
        assert!(!s.contains(a));
        assert!(s.contains(b));
    }

    #[test]
    fn slab_classes_grow_geometrically() {
        let s = MemcachedStore::new(1 << 20, SimClock::new(), SimRng::seed_from_u64(0));
        for w in s.classes.windows(2) {
            assert!(w[1].chunk_size > w[0].chunk_size);
        }
        // A 4 KB page lands in a class that fits it snugly (< 2x).
        let c = s.class_for(MemcachedStore::item_bytes());
        assert!(s.classes[c].chunk_size >= MemcachedStore::item_bytes());
        assert!(s.classes[c].chunk_size < MemcachedStore::item_bytes() * 2);
    }
}
