//! The local-DRAM store baseline.

use std::collections::HashMap;

use fluidmem_coord::PartitionId;
use fluidmem_mem::{PageContents, PAGE_SIZE};
use fluidmem_sim::{SimClock, SimRng};

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::stats::{StoreCounters, StoreStats};
use crate::store::KeyValueStore;
use crate::transport::TransportModel;
use fluidmem_telemetry::Registry;

/// An in-process page store on the hypervisor's own DRAM — the paper's
/// "FluidMem DRAM" configuration, used to isolate monitor overhead from
/// network latency (Figure 3a, Table II's DRAM columns).
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::{DramStore, ExternalKey, KeyValueStore};
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let mut store = DramStore::new(16 << 20, SimClock::new(), SimRng::seed_from_u64(1));
/// let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
/// store.put(key, PageContents::Token(1))?;
/// assert!(store.contains(key));
/// # Ok::<(), fluidmem_kv::KvError>(())
/// ```
#[derive(Debug)]
pub struct DramStore {
    map: HashMap<u64, PageContents>,
    capacity_pages: usize,
    transport: TransportModel,
    clock: SimClock,
    rng: SimRng,
    stats: StoreCounters,
}

impl DramStore {
    /// Creates a store holding up to `capacity_bytes` of pages.
    pub fn new(capacity_bytes: usize, clock: SimClock, rng: SimRng) -> Self {
        DramStore {
            map: HashMap::new(),
            capacity_pages: (capacity_bytes / PAGE_SIZE).max(1),
            transport: TransportModel::local(),
            clock,
            rng,
            stats: StoreCounters::new(),
        }
    }
}

impl KeyValueStore for DramStore {
    fn name(&self) -> &'static str {
        "dram"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        let cost = self.transport.sample_top_half(&mut self.rng)
            + self.transport.sample_flight(&mut self.rng, PAGE_SIZE)
            + self.transport.sample_bottom_half(&mut self.rng);
        self.clock.advance(cost);
        if !self.map.contains_key(&key.raw()) && self.map.len() >= self.capacity_pages {
            return Err(KvError::OutOfCapacity);
        }
        self.map.insert(key.raw(), value);
        self.stats.puts.inc();
        self.stats.put_latency.observe(cost);
        Ok(())
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        let cost = self.transport.sample_top_half(&mut self.rng);
        self.clock.advance(cost);
        let existed = self.map.remove(&key.raw()).is_some();
        if existed {
            self.stats.deletes.inc();
        }
        existed
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        let issued_at = self.clock.now();
        let top = self.transport.sample_top_half(&mut self.rng);
        self.clock.advance(top);
        let flight = self.transport.sample_flight(&mut self.rng, PAGE_SIZE);
        let result = match self.map.get(&key.raw()) {
            Some(v) => Ok(v.clone()),
            None => Err(KvError::NotFound(key)),
        };
        PendingGet {
            key,
            result,
            issued_at,
            completes_at: self.clock.now() + flight,
        }
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        self.clock.advance_to(pending.completes_at);
        let bottom = self.transport.sample_bottom_half(&mut self.rng);
        self.clock.advance(bottom);
        self.stats
            .get_latency
            .observe(self.clock.now() - pending.issued_at);
        match pending.result {
            Ok(v) => {
                self.stats.gets.inc();
                Ok(v)
            }
            Err(e) => {
                self.stats.get_misses.inc();
                Err(e)
            }
        }
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        let count = batch.len();
        let issued_at = self.clock.now();
        let top = self.transport.sample_top_half(&mut self.rng);
        self.clock.advance(top);
        let flight = self
            .transport
            .sample_batch_flight(&mut self.rng, count, count * PAGE_SIZE);
        let mut keys = Vec::with_capacity(count);
        for (key, value) in batch {
            if !self.map.contains_key(&key.raw()) && self.map.len() >= self.capacity_pages {
                return Err(KvError::OutOfCapacity);
            }
            self.map.insert(key.raw(), value);
            keys.push(key);
        }
        self.stats.batched_puts.add(count as u64);
        self.stats.multi_writes.inc();
        Ok(PendingWrite {
            keys,
            issued_at,
            completes_at: self.clock.now() + flight,
        })
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        self.clock.advance_to(pending.completes_at);
        let bottom = self.transport.sample_bottom_half(&mut self.rng);
        self.clock.advance(bottom);
        self.stats
            .multi_write_latency
            .observe(self.clock.now() - pending.issued_at);
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        let before = self.map.len();
        self.map
            .retain(|&raw, _| raw & 0xFFF != u64::from(partition.raw()));
        let n = (before - self.map.len()) as u64;
        self.stats.deletes.add(n);
        n
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.map.contains_key(&key.raw())
    }

    fn partition_keys(&self, partition: PartitionId) -> Vec<ExternalKey> {
        let mut keys: Vec<ExternalKey> = self
            .map
            .keys()
            .filter(|&&raw| raw & 0xFFF == u64::from(partition.raw()))
            .map(|&raw| ExternalKey::from_raw(raw))
            .collect();
        keys.sort_unstable();
        keys
    }

    fn peek(&self, key: ExternalKey) -> Option<PageContents> {
        self.map.get(&key.raw()).cloned()
    }

    fn ingest(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        if !self.map.contains_key(&key.raw()) && self.map.len() >= self.capacity_pages {
            return Err(KvError::OutOfCapacity);
        }
        self.map.insert(key.raw(), value);
        Ok(())
    }

    fn expunge(&mut self, key: ExternalKey) -> bool {
        self.map.remove(&key.raw()).is_some()
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    fn instrument(&mut self, registry: &Registry) {
        self.stats.register(registry, self.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_mem::Vpn;
    use fluidmem_sim::SimDuration;

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    #[test]
    fn roundtrip_and_capacity() {
        let mut s = DramStore::new(2 * PAGE_SIZE, SimClock::new(), SimRng::seed_from_u64(1));
        s.put(key(1), PageContents::Token(1)).unwrap();
        s.put(key(2), PageContents::Token(2)).unwrap();
        assert!(matches!(
            s.put(key(3), PageContents::Token(3)),
            Err(KvError::OutOfCapacity)
        ));
        // Overwrite of an existing key is always allowed.
        s.put(key(1), PageContents::Token(9)).unwrap();
        assert_eq!(s.get(key(1)).unwrap(), PageContents::Token(9));
    }

    #[test]
    fn local_ops_are_sub_3us() {
        let clock = SimClock::new();
        let mut s = DramStore::new(1 << 20, clock.clone(), SimRng::seed_from_u64(1));
        s.put(key(1), PageContents::Token(1)).unwrap();
        let t0 = clock.now();
        s.get(key(1)).unwrap();
        assert!((clock.now() - t0) < SimDuration::from_micros(3));
    }

    #[test]
    fn stats_track_misses() {
        let mut s = DramStore::new(1 << 20, SimClock::new(), SimRng::seed_from_u64(1));
        let _ = s.get(key(1));
        s.put(key(1), PageContents::Token(1)).unwrap();
        let _ = s.get(key(1));
        assert_eq!(s.stats().get_misses, 1);
        assert_eq!(s.stats().gets, 1);
    }
}
