//! Bounded retry with exponential backoff for remote-store clients.
//!
//! The remote-memory path must survive transport faults (see
//! [`FaultPlan`](fluidmem_sim::FaultPlan)): a dropped request costs the
//! per-op deadline, a transient refusal costs almost nothing, and in
//! both cases the client is expected to retry. [`RetryPolicy`] bounds
//! those retries — exponential backoff with jitter drawn from the
//! simulation RNG so runs stay deterministic, capped both per wait and
//! in attempt count.

use fluidmem_sim::{SimClock, SimDuration, SimRng};

use crate::error::KvError;

/// A bounded exponential-backoff retry policy.
///
/// Attempt `n` (zero-based) that fails retryably waits
/// `jitter * min(base_backoff << n, max_backoff)` with `jitter`
/// uniform in `[0.5, 1.0)`, then tries again, up to `max_attempts`
/// total attempts. `deadline` is the per-operation give-up time a
/// client (or fault injector) charges for a request whose response
/// never arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Upper bound on any single backoff wait.
    pub max_backoff: SimDuration,
    /// Per-operation deadline: how long a caller waits for a response
    /// before declaring [`KvError::Timeout`].
    pub deadline: SimDuration,
}

impl RetryPolicy {
    /// No retries: one attempt, errors surface immediately. The
    /// deadline still applies to lost requests.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::from_micros(0),
            max_backoff: SimDuration::from_micros(0),
            deadline: SimDuration::from_micros(400),
        }
    }

    /// Defaults tuned for the remote (InfiniBand-class) stores: a
    /// deadline comfortably above the ~14–70 µs round trips, short
    /// first backoff, and enough attempts that giving up is
    /// probabilistically unreachable under any plausible fault rate.
    pub fn default_remote() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 16,
            base_backoff: SimDuration::from_micros(20),
            max_backoff: SimDuration::from_millis(2),
            deadline: SimDuration::from_micros(400),
        }
    }

    /// Sets the total attempt budget (clamped to at least 1).
    pub fn attempts(mut self, n: u32) -> RetryPolicy {
        self.max_attempts = n.max(1);
        self
    }

    /// Sets the per-operation deadline.
    pub fn with_deadline(mut self, d: SimDuration) -> RetryPolicy {
        self.deadline = d;
        self
    }

    /// The jittered wait before retry number `retry` (zero-based).
    pub fn backoff(&self, retry: u32, rng: &mut SimRng) -> SimDuration {
        let base = self.base_backoff.as_nanos();
        let cap = self.max_backoff.as_nanos().max(base);
        let exp = base.saturating_shl(retry.min(32)).min(cap);
        // Uniform jitter in [0.5, 1.0) breaks up retry convoys.
        let jitter = 0.5 + 0.5 * rng.gen_f64();
        SimDuration::from_nanos((exp as f64 * jitter) as u64)
    }
}

/// Helper extending `u64` with a saturating shift (2^retry growth
/// overflows quickly at nanosecond granularity).
trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        if self == 0 {
            0
        } else if n > self.leading_zeros() {
            u64::MAX
        } else {
            self << n
        }
    }
}

/// Runs `op` under `policy`, charging each backoff wait to the
/// simulation clock and counting retries into `retries`.
///
/// `op` receives the zero-based attempt number. Fatal errors
/// (`NotFound`, `OutOfCapacity`) return immediately; retryable errors
/// retry until the attempt budget is spent, then surface the last
/// error.
pub fn run_with_retries<T>(
    policy: &RetryPolicy,
    clock: &SimClock,
    rng: &mut SimRng,
    retries: &mut u64,
    op: impl FnMut(u32) -> Result<T, KvError>,
) -> Result<T, KvError> {
    run_with_retries_from(policy, clock, rng, 0, |_, _| *retries += 1, op)
}

/// The general form of [`run_with_retries`]: the clock-charging retry
/// loop shared by every store client (reads, eviction writes, the
/// flush/drain path).
///
/// `prior_attempts` counts tries already spent on this operation by an
/// earlier phase (e.g. an asynchronous top-half read that failed); it
/// shrinks the remaining attempt budget and shifts the backoff schedule
/// so retry number `n` here waits as retry `prior_attempts + n` would.
/// `on_retry` runs once per retryable failure that will be retried,
/// *before* the backoff wait is charged — the hook point for counters
/// and trace lines. Fatal errors (`NotFound`, `OutOfCapacity`) return
/// immediately; a retryable error on the last attempt surfaces as the
/// final `Err`.
pub fn run_with_retries_from<T>(
    policy: &RetryPolicy,
    clock: &SimClock,
    rng: &mut SimRng,
    prior_attempts: u32,
    mut on_retry: impl FnMut(u32, &KvError),
    mut op: impl FnMut(u32) -> Result<T, KvError>,
) -> Result<T, KvError> {
    let budget = policy
        .max_attempts
        .max(1)
        .saturating_sub(prior_attempts)
        .max(1);
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt + 1 < budget => {
                on_retry(attempt, &e);
                clock.advance(policy.backoff(prior_attempts + attempt, rng));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: SimDuration::from_micros(10),
            max_backoff: SimDuration::from_micros(100),
            deadline: SimDuration::from_micros(400),
        };
        let mut rng = SimRng::seed_from_u64(7);
        let mut prev = SimDuration::from_nanos(0);
        for retry in 0..4 {
            let wait = policy.backoff(retry, &mut rng);
            // Jitter keeps every wait within [half, full] of the
            // exponential envelope.
            let envelope = 10_000u64 << retry;
            assert!(wait.as_nanos() >= envelope / 2, "retry {retry}: {wait:?}");
            assert!(wait.as_nanos() <= envelope, "retry {retry}: {wait:?}");
            assert!(wait >= prev / 2);
            prev = wait;
        }
        for retry in 4..10 {
            assert!(policy.backoff(retry, &mut rng).as_nanos() <= 100_000);
        }
    }

    #[test]
    fn shifts_saturate_instead_of_overflowing() {
        assert_eq!(1u64.saturating_shl(63), 1 << 63);
        assert_eq!(1u64.saturating_shl(64), u64::MAX);
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
        assert_eq!(0u64.saturating_shl(64), 0);
    }

    #[test]
    fn run_retries_until_success_and_charges_the_clock() {
        let policy = RetryPolicy::default_remote();
        let clock = SimClock::new();
        let mut rng = SimRng::seed_from_u64(3);
        let mut retries = 0;
        let mut failures_left = 3;
        let out = run_with_retries(&policy, &clock, &mut rng, &mut retries, |_| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(KvError::Unavailable)
            } else {
                Ok(42)
            }
        });
        assert_eq!(out, Ok(42));
        assert_eq!(retries, 3);
        assert!(clock.now().as_nanos() > 0, "backoff must consume time");
    }

    #[test]
    fn fatal_errors_do_not_retry() {
        let policy = RetryPolicy::default_remote();
        let clock = SimClock::new();
        let mut rng = SimRng::seed_from_u64(4);
        let mut retries = 0;
        let mut calls = 0;
        let out: Result<(), KvError> =
            run_with_retries(&policy, &clock, &mut rng, &mut retries, |_| {
                calls += 1;
                Err(KvError::OutOfCapacity)
            });
        assert_eq!(out, Err(KvError::OutOfCapacity));
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }

    #[test]
    fn attempt_budget_is_honored() {
        let policy = RetryPolicy::default_remote().attempts(5);
        let clock = SimClock::new();
        let mut rng = SimRng::seed_from_u64(5);
        let mut retries = 0;
        let mut calls = 0;
        let out: Result<(), KvError> =
            run_with_retries(&policy, &clock, &mut rng, &mut retries, |_| {
                calls += 1;
                Err(KvError::Timeout)
            });
        assert_eq!(out, Err(KvError::Timeout));
        assert_eq!(calls, 5);
        assert_eq!(retries, 4);
    }
}
