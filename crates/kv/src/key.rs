//! External key encoding (paper §IV).

use std::fmt;

use fluidmem_coord::PartitionId;
use fluidmem_mem::Vpn;

/// The 64-bit key under which a page is stored remotely.
///
/// Per the paper: *"the key is a 64-bit integer matching the first 52 bits
/// of the virtual memory address used by the faulting application ... To
/// support other key-value stores without partition support, we use the
/// remaining 12 bits to index a 'virtual partition'."*
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::ExternalKey;
/// use fluidmem_mem::Vpn;
///
/// let key = ExternalKey::new(Vpn::new(0xABCDE), PartitionId::new(7));
/// assert_eq!(key.vpn(), Vpn::new(0xABCDE));
/// assert_eq!(key.partition(), PartitionId::new(7));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExternalKey(u64);

impl ExternalKey {
    /// Packs a 52-bit page number and a 12-bit partition into one key.
    ///
    /// # Panics
    ///
    /// Panics if the page number does not fit in 52 bits.
    pub fn new(vpn: Vpn, partition: PartitionId) -> Self {
        assert!(
            vpn.raw() < (1 << 52),
            "page number must fit in 52 bits (got {:#x})",
            vpn.raw()
        );
        ExternalKey((vpn.raw() << 12) | u64::from(partition.raw()))
    }

    /// The page-number half of the key.
    pub fn vpn(self) -> Vpn {
        Vpn::new(self.0 >> 12)
    }

    /// The virtual-partition half of the key.
    pub fn partition(self) -> PartitionId {
        PartitionId::new((self.0 & 0xFFF) as u16)
    }

    /// The raw 64-bit key.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from its raw 64-bit encoding. Every `u64` is a
    /// valid encoding (52-bit page number, 12-bit partition), so this
    /// cannot fail.
    pub fn from_raw(raw: u64) -> Self {
        ExternalKey(raw)
    }
}

impl fmt::Debug for ExternalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExternalKey({} in {})", self.vpn(), self.partition())
    }
}

impl fmt::Display for ExternalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let k = ExternalKey::new(Vpn::new((1 << 52) - 1), PartitionId::new(4095));
        assert_eq!(k.vpn(), Vpn::new((1 << 52) - 1));
        assert_eq!(k.partition(), PartitionId::new(4095));
    }

    #[test]
    fn partitions_isolate_identical_vpns() {
        let a = ExternalKey::new(Vpn::new(0x1000), PartitionId::new(1));
        let b = ExternalKey::new(Vpn::new(0x1000), PartitionId::new(2));
        assert_ne!(a, b, "same page in different VMs must not collide");
    }

    #[test]
    #[should_panic(expected = "52 bits")]
    fn oversized_vpn_rejected() {
        ExternalKey::new(Vpn::new(1 << 52), PartitionId::new(0));
    }

    #[test]
    fn display_is_hex() {
        let k = ExternalKey::new(Vpn::new(1), PartitionId::new(2));
        assert_eq!(k.to_string(), "0x0000000000001002");
    }
}
