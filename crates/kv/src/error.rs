//! Key-value store errors.

use std::error::Error;
use std::fmt;

use crate::key::ExternalKey;

/// Errors returned by [`KeyValueStore`](crate::KeyValueStore) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The key is not present. For a cache-style store (memcached) this
    /// can mean the object was evicted — genuine data loss for a page
    /// store, which the monitor surfaces loudly.
    NotFound(ExternalKey),
    /// The store has no capacity left and cannot evict (RAMCloud refuses
    /// writes rather than dropping data).
    OutOfCapacity,
    /// The request (or its response) was lost in flight and the per-op
    /// deadline expired. The server may or may not have applied the
    /// operation; page puts are idempotent, so retrying is always safe.
    Timeout,
    /// The server refused the request quickly (transient overload,
    /// replica mid-recovery). The operation was *not* applied.
    Unavailable,
    /// The stored bytes are not a valid framed page (bad frame tag,
    /// truncated run-length pairs, wrong decoded length). The data is
    /// damaged in place — retrying would read the same bytes — so this
    /// is fatal, like [`KvError::NotFound`].
    Corruption(&'static str),
}

impl KvError {
    /// Whether a client should retry the operation.
    ///
    /// `Timeout` and `Unavailable` are transport/availability faults:
    /// the data is still there and a retry (with backoff) is expected to
    /// succeed. `NotFound` and `OutOfCapacity` describe durable state —
    /// retrying cannot help and clients must surface them instead.
    pub fn is_retryable(&self) -> bool {
        matches!(self, KvError::Timeout | KvError::Unavailable)
    }
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::NotFound(k) => write!(f, "key {k} not found in store"),
            KvError::OutOfCapacity => write!(f, "store capacity exhausted"),
            KvError::Timeout => write!(f, "operation deadline expired"),
            KvError::Unavailable => write!(f, "store transiently unavailable"),
            KvError::Corruption(detail) => write!(f, "page data corrupted: {detail}"),
        }
    }
}

impl Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_coord::PartitionId;
    use fluidmem_mem::Vpn;

    #[test]
    fn display_names_key() {
        let k = ExternalKey::new(Vpn::new(0x99), PartitionId::new(0));
        assert!(KvError::NotFound(k).to_string().contains("0x"));
    }

    #[test]
    fn taxonomy_splits_retryable_from_fatal() {
        let k = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
        assert!(KvError::Timeout.is_retryable());
        assert!(KvError::Unavailable.is_retryable());
        assert!(!KvError::NotFound(k).is_retryable());
        assert!(!KvError::OutOfCapacity.is_retryable());
        assert!(!KvError::Corruption("bad frame").is_retryable());
    }
}
