//! Key-value store errors.

use std::error::Error;
use std::fmt;

use crate::key::ExternalKey;

/// Errors returned by [`KeyValueStore`](crate::KeyValueStore) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The key is not present. For a cache-style store (memcached) this
    /// can mean the object was evicted — genuine data loss for a page
    /// store, which the monitor surfaces loudly.
    NotFound(ExternalKey),
    /// The store has no capacity left and cannot evict (RAMCloud refuses
    /// writes rather than dropping data).
    OutOfCapacity,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::NotFound(k) => write!(f, "key {k} not found in store"),
            KvError::OutOfCapacity => write!(f, "store capacity exhausted"),
        }
    }
}

impl Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_coord::PartitionId;
    use fluidmem_mem::Vpn;

    #[test]
    fn display_names_key() {
        let k = ExternalKey::new(Vpn::new(0x99), PartitionId::new(0));
        assert!(KvError::NotFound(k).to_string().contains("0x"));
    }
}
