//! A sharded remote-memory cluster with live partition migration.
//!
//! [`ClusterStore`] routes every page key across N store nodes by
//! consistent hashing ([`HashRing`]) and keeps an authoritative
//! per-partition assignment table: a partition's owner changes *only* at
//! an explicit routing flip, never implicitly because the ring moved.
//! That separation is what makes live migration safe — the ring proposes,
//! the assignment table disposes.
//!
//! # Live partition migration
//!
//! Moving a partition from `source` to `target` runs in three phases,
//! modeled on the background reclaimer (DESIGN.md §13): the copier's CPU
//! time accrues on a **private timeline** (`cursor`) and its activations
//! ride a completion [`EventQueue`], so the fault pipeline never waits on
//! a copy batch.
//!
//! 1. **Snapshot copy** — [`start_migration`](ClusterStore::start_migration)
//!    snapshots the partition's key list (an uncharged maintenance read)
//!    and the copier streams it to the target in batches of
//!    `batch_pages`, paying one batched transport flight per batch on its
//!    own cursor.
//! 2. **Dirty re-copy** — writes routed to the source while the copier
//!    runs are appended to a dirty-key log *at issue time* (covering
//!    applied-but-unacked timeouts); the copier drains the log the same
//!    way until both the snapshot and the log are empty.
//! 3. **Routing flip** — the host publishes the new route in the
//!    coordination service, then calls
//!    [`complete_flip`](ClusterStore::complete_flip), which atomically
//!    repoints the assignment table and drops the partition from the
//!    source. A write arriving while the migration is flip-ready demotes
//!    it back to copying, so the flip only ever happens on a quiesced,
//!    fully-copied partition.
//!
//! Reads and writes always route to the *current owner* (the source,
//! until the flip), so no page read ever observes a half-copied target
//! and no write is ever lost: pre-flip writes land on the source and are
//! re-copied; post-flip writes land on the target.
//!
//! # Shadow accounting
//!
//! The store keeps a shadow set of every key acknowledged as written and
//! not yet deleted. [`audit`](ClusterStore::audit) proves, after any
//! sequence of migrations and faults, that every shadow key is present
//! at its routed node and present *only* there (the in-flight migration
//! target being the one sanctioned duplicate holder).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

use std::cell::RefCell;

use fluidmem_coord::PartitionId;
use fluidmem_mem::PageContents;
use fluidmem_sim::{EventQueue, SimClock, SimInstant, SimRng};
use fluidmem_telemetry::{consts, Counter, Gauge, Registry, Telemetry};

use crate::error::KvError;
use crate::key::ExternalKey;
use crate::pending::{PendingGet, PendingWrite};
use crate::ring::{HashRing, NodeId};
use crate::stats::StoreStats;
use crate::store::KeyValueStore;
use crate::transport::TransportModel;

/// Live telemetry handles for the cluster layer, exported under the
/// `fluidmem_cluster_*` metric family.
#[derive(Debug, Clone, Default)]
pub struct ClusterCounters {
    /// Migrations started.
    pub migrations_started: Counter,
    /// Migrations whose routing flip committed.
    pub migrations_flipped: Counter,
    /// Migrations abandoned (target discarded).
    pub migrations_aborted: Counter,
    /// Migrations restarted toward a different target.
    pub migrations_retargeted: Counter,
    /// First-pass pages streamed by the copier.
    pub pages_copied: Counter,
    /// Pages re-sent off the dirty-key log.
    pub pages_recopied: Counter,
    /// Store nodes that joined the ring.
    pub node_joins: Counter,
    /// Store nodes that left gracefully.
    pub node_leaves: Counter,
    /// Store nodes removed because their lease expired.
    pub node_expirations: Counter,
    /// Current ring imbalance, permille over the mean.
    pub ring_imbalance_permille: Gauge,
}

impl ClusterCounters {
    /// Registers every handle in `registry` (adoption carries values).
    pub fn register(&self, registry: &Registry) {
        let event = |name: &'static str, c: &Counter| {
            registry.adopt_counter(consts::CLUSTER_EVENTS, &[(consts::LABEL_EVENT, name)], c);
        };
        event("migration_start", &self.migrations_started);
        event("migration_flip", &self.migrations_flipped);
        event("migration_abort", &self.migrations_aborted);
        event("migration_retarget", &self.migrations_retargeted);
        event("node_join", &self.node_joins);
        event("node_leave", &self.node_leaves);
        event("node_expire", &self.node_expirations);
        registry.adopt_counter(
            consts::CLUSTER_MIGRATION_PAGES,
            &[(consts::LABEL_OP, "copied")],
            &self.pages_copied,
        );
        registry.adopt_counter(
            consts::CLUSTER_MIGRATION_PAGES,
            &[(consts::LABEL_OP, "recopied")],
            &self.pages_recopied,
        );
        registry.adopt_gauge(
            consts::CLUSTER_RING_IMBALANCE_PERMILLE,
            &[],
            &self.ring_imbalance_permille,
        );
    }
}

/// What a migration-chaos audit found (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Shadow keys checked.
    pub checked: u64,
    /// Shadow keys absent from their routed node — lost pages.
    pub missing: Vec<u64>,
    /// Shadow keys present on more than one node (beyond a sanctioned
    /// in-flight migration target) — duplicated pages.
    pub duplicated: Vec<u64>,
}

impl AuditReport {
    /// Whether the audit found no lost and no duplicated pages.
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.duplicated.is_empty()
    }
}

struct ClusterNode {
    id: NodeId,
    store: Box<dyn KeyValueStore>,
    alive: bool,
    gets: Counter,
    puts: Counter,
    deletes: Counter,
    errors: Counter,
}

impl ClusterNode {
    fn register(&self, registry: &Registry) {
        let id = self.id.to_string();
        let op = |name: &'static str, c: &Counter| {
            registry.adopt_counter(
                consts::CLUSTER_OPS,
                &[(consts::LABEL_NODE, id.as_str()), (consts::LABEL_OP, name)],
                c,
            );
        };
        op("get", &self.gets);
        op("put", &self.puts);
        op("delete", &self.deletes);
        op("error", &self.errors);
    }
}

/// One in-flight partition migration.
#[derive(Debug)]
struct Migration {
    source: NodeId,
    target: NodeId,
    /// Snapshot of the partition's keys at start, drained front-first.
    remaining: VecDeque<u64>,
    /// Keys written on the source while the copier runs.
    dirty: BTreeSet<u64>,
    pages_copied: u64,
    pages_recopied: u64,
    /// Both lists drained; eligible for a routing flip.
    ready: bool,
    /// An activation for this migration is queued.
    scheduled: bool,
    /// Guards stale activations after an abort/retarget.
    gen: u64,
}

/// A sharded store routing partitions across N nodes (see module docs).
pub struct ClusterStore {
    nodes: Vec<ClusterNode>,
    ring: HashRing,
    /// Authoritative partition → owner map. Entries appear at first
    /// touch (ring home) and change only at migration flips.
    assignments: HashMap<u16, NodeId>,
    migrations: HashMap<u16, Migration>,
    /// Copier activations: `(partition, generation)`.
    activations: EventQueue<(u16, u64)>,
    next_gen: u64,
    /// The copier's private timeline (DESIGN.md §13 pattern).
    cursor: SimInstant,
    batch_pages: usize,
    transport: TransportModel,
    clock: SimClock,
    /// Copier-only randomness; the data path never draws from it.
    rng: SimRng,
    /// Every key acknowledged as written and not deleted since.
    shadow: BTreeSet<u64>,
    /// Which node served each in-flight `begin_get`, FIFO per key.
    pending_gets: HashMap<u64, VecDeque<usize>>,
    /// Inner pendings of in-flight multi-writes, keyed by lead key.
    inflight_writes: Vec<(u64, Vec<(usize, PendingWrite)>)>,
    telemetry: Option<Telemetry>,
    counters: ClusterCounters,
}

impl ClusterStore {
    /// An empty cluster. `rng` must be a dedicated fork — the copier
    /// draws transfer times from it on its own timeline, and nothing on
    /// the data path may share it.
    pub fn new(
        clock: SimClock,
        rng: SimRng,
        transport: TransportModel,
        vnodes: u32,
        batch_pages: usize,
    ) -> Self {
        assert!(
            batch_pages > 0,
            "the copier must move at least one page per batch"
        );
        ClusterStore {
            nodes: Vec::new(),
            ring: HashRing::new(vnodes),
            assignments: HashMap::new(),
            migrations: HashMap::new(),
            activations: EventQueue::new(),
            next_gen: 0,
            cursor: SimInstant::EPOCH,
            batch_pages,
            transport,
            clock,
            rng,
            shadow: BTreeSet::new(),
            pending_gets: HashMap::new(),
            inflight_writes: Vec::new(),
            telemetry: None,
            counters: ClusterCounters::default(),
        }
    }

    /// The cluster's live telemetry handles.
    pub fn counters(&self) -> &ClusterCounters {
        &self.counters
    }

    /// Attaches telemetry: registers the cluster counter family and every
    /// node's per-node op counters, and records migration spans on the
    /// [`consts::TRACK_CLUSTER`] track from now on.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.counters.register(telemetry.registry());
        for node in &self.nodes {
            node.register(telemetry.registry());
        }
        self.telemetry = Some(telemetry);
    }

    // ----- membership -------------------------------------------------

    /// Adds a store node and places it on the ring. Newly-touched
    /// partitions may home at it immediately; already-assigned partitions
    /// move only through explicit migrations (see
    /// [`rebalance_plan`](ClusterStore::rebalance_plan)).
    pub fn add_node(&mut self, id: NodeId, store: Box<dyn KeyValueStore>) {
        assert!(
            !self.nodes.iter().any(|n| n.id == id),
            "node {id} already exists"
        );
        let node = ClusterNode {
            id,
            store,
            alive: true,
            gets: Counter::default(),
            puts: Counter::default(),
            deletes: Counter::default(),
            errors: Counter::default(),
        };
        if let Some(t) = &self.telemetry {
            node.register(t.registry());
        }
        self.nodes.push(node);
        self.ring.add_node(id);
        self.counters.node_joins.inc();
        self.update_imbalance();
        if let Some(t) = &self.telemetry {
            t.instant(consts::TRACK_CLUSTER, &format!("node.join.{id}"));
        }
    }

    /// Takes a node off the ring (the first step of a graceful leave) so
    /// no new partition homes at it. Its existing assignments keep
    /// routing to it until migrated away. Returns whether it was on the
    /// ring.
    pub fn retire_from_ring(&mut self, id: NodeId) -> bool {
        let was = self.ring.remove_node(id);
        if was {
            self.counters.node_leaves.inc();
            self.update_imbalance();
        }
        was
    }

    /// Marks a node dead (lease expiry / crash): it is removed from the
    /// ring, new operations routed at it fail with
    /// [`KvError::Unavailable`], any migration *sourcing* from it is
    /// aborted, and the partitions of migrations *targeting* it are
    /// returned so the host can retarget them.
    pub fn fail_node(&mut self, id: NodeId) -> Vec<PartitionId> {
        self.ring.remove_node(id);
        if let Some(node) = self.nodes.iter_mut().find(|n| n.id == id) {
            node.alive = false;
        }
        let involved: Vec<(u16, NodeId, NodeId)> = self
            .migrations
            .iter()
            .filter(|(_, m)| m.source == id || m.target == id)
            .map(|(&p, m)| (p, m.source, m.target))
            .collect();
        let mut retarget = Vec::new();
        for (p, source, target) in involved {
            if source == id {
                // The owner is gone; there is nothing left to copy from.
                self.abort_migration(PartitionId::new(p));
            } else if target == id {
                self.abort_migration(PartitionId::new(p));
                retarget.push(PartitionId::new(p));
            }
        }
        self.update_imbalance();
        retarget
    }

    /// Whether a node exists and is alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.iter().any(|n| n.id == id && n.alive)
    }

    /// Ids of all nodes ever added, in join order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Objects currently held by one node (0 for unknown nodes).
    pub fn node_len(&self, id: NodeId) -> usize {
        self.nodes
            .iter()
            .find(|n| n.id == id)
            .map_or(0, |n| n.store.len())
    }

    /// Per-node issued-operation counts (get + put + delete), for load
    /// policies like "drain the hottest node".
    pub fn node_loads(&self) -> Vec<(NodeId, u64)> {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| (n.id, n.gets.get() + n.puts.get() + n.deletes.get()))
            .collect()
    }

    /// The node a partition currently routes to, if assigned or homeable.
    pub fn owner_of(&self, partition: PartitionId) -> Option<NodeId> {
        self.assignments
            .get(&partition.raw())
            .copied()
            .or_else(|| self.ring.home_of(partition))
    }

    /// Partitions currently assigned to `id`, ascending.
    pub fn partitions_of(&self, id: NodeId) -> Vec<PartitionId> {
        let mut out: Vec<u16> = self
            .assignments
            .iter()
            .filter(|&(_, &n)| n == id)
            .map(|(&p, _)| p)
            .collect();
        out.sort_unstable();
        out.into_iter().map(PartitionId::new).collect()
    }

    /// The migrations every assigned partition would need for the
    /// assignment table to match the ring again: `(partition, target)`
    /// pairs, ascending by partition, skipping partitions already
    /// migrating.
    pub fn rebalance_plan(&self) -> Vec<(PartitionId, NodeId)> {
        let mut plan: Vec<(u16, NodeId)> = self
            .assignments
            .iter()
            .filter(|(p, &owner)| {
                !self.migrations.contains_key(p)
                    && self
                        .ring
                        .home_of(PartitionId::new(**p))
                        .is_some_and(|home| home != owner)
            })
            .map(|(&p, _)| {
                let home = self.ring.home_of(PartitionId::new(p)).unwrap();
                (p, home)
            })
            .collect();
        plan.sort_unstable();
        plan.into_iter()
            .map(|(p, n)| (PartitionId::new(p), n))
            .collect()
    }

    // ----- migration --------------------------------------------------

    /// Begins live-migrating `partition` to `target`. Returns `false`
    /// (and does nothing) if the partition is unassigned, already lives
    /// at `target`, is already migrating, or the target is not alive.
    pub fn start_migration(&mut self, partition: PartitionId, target: NodeId) -> bool {
        let p = partition.raw();
        let Some(&source) = self.assignments.get(&p) else {
            return false;
        };
        if source == target || self.migrations.contains_key(&p) || !self.is_alive(target) {
            return false;
        }
        let Some(src) = self.nodes.iter().position(|n| n.id == source) else {
            return false;
        };
        // Uncharged snapshot: the copier's view of the partition at start.
        let remaining: VecDeque<u64> = self.nodes[src]
            .store
            .partition_keys(partition)
            .into_iter()
            .map(ExternalKey::raw)
            .collect();
        let gen = self.next_gen;
        self.next_gen += 1;
        self.migrations.insert(
            p,
            Migration {
                source,
                target,
                remaining,
                dirty: BTreeSet::new(),
                pages_copied: 0,
                pages_recopied: 0,
                ready: false,
                scheduled: false,
                gen,
            },
        );
        self.counters.migrations_started.inc();
        if let Some(t) = &self.telemetry {
            t.instant(
                consts::TRACK_CLUSTER,
                &format!("migration.start.p{p}.{source}to{target}"),
            );
        }
        self.schedule(p);
        true
    }

    /// Aborts an in-flight migration, discarding everything already
    /// copied to the target. Returns whether one existed.
    pub fn abort_migration(&mut self, partition: PartitionId) -> bool {
        let Some(mig) = self.migrations.remove(&partition.raw()) else {
            return false;
        };
        if let Some(tgt) = self.nodes.iter().position(|n| n.id == mig.target) {
            self.nodes[tgt].store.drop_partition(partition);
        }
        self.counters.migrations_aborted.inc();
        if let Some(t) = &self.telemetry {
            t.instant(
                consts::TRACK_CLUSTER,
                &format!("migration.abort.p{}", partition.raw()),
            );
        }
        true
    }

    /// Aborts and immediately restarts a migration toward `new_target`
    /// (lease-expiry recovery). Returns whether a restart happened.
    pub fn retarget_migration(&mut self, partition: PartitionId, new_target: NodeId) -> bool {
        if !self.migrations.contains_key(&partition.raw()) {
            return false;
        }
        self.abort_migration(partition);
        let restarted = self.start_migration(partition, new_target);
        if restarted {
            self.counters.migrations_retargeted.inc();
        }
        restarted
    }

    /// The `(source, target)` of an in-flight migration.
    pub fn migration_of(&self, partition: PartitionId) -> Option<(NodeId, NodeId)> {
        self.migrations
            .get(&partition.raw())
            .map(|m| (m.source, m.target))
    }

    /// Number of in-flight migrations.
    pub fn migrations_in_flight(&self) -> usize {
        self.migrations.len()
    }

    /// Whether a migration has copied everything (including its dirty
    /// backlog) and is waiting for the host to publish the routing flip.
    /// A concurrent write demotes a ready migration back to copying, so
    /// the host re-checks this immediately before publishing.
    pub fn is_flip_ready(&self, partition: PartitionId) -> bool {
        self.migrations
            .get(&partition.raw())
            .is_some_and(|m| m.ready)
    }

    /// Whether any in-flight migration copies from or to `id` — a
    /// draining node must not be deregistered while true.
    pub fn migrations_touch(&self, id: NodeId) -> bool {
        self.migrations
            .values()
            .any(|m| m.source == id || m.target == id)
    }

    /// Runs the copier up to `now`: pops due activations, copies one
    /// batch per activation on the private cursor, and returns the
    /// partitions that became flip-ready. Never touches the shared clock
    /// or the data-path RNG.
    pub fn tick(&mut self, now: SimInstant) -> Vec<PartitionId> {
        let mut flips = Vec::new();
        while let Some((at, (p, gen))) = self.activations.pop_ready(now) {
            let Some(mig) = self.migrations.get_mut(&p) else {
                continue; // aborted since scheduling
            };
            if mig.gen != gen {
                continue; // retargeted since scheduling
            }
            mig.scheduled = false;
            if mig.ready {
                continue; // a flip is already pending with the host
            }
            self.cursor = self.cursor.max(at);
            self.copy_batch(p);
            let mig = &self.migrations[&p];
            if mig.remaining.is_empty() && mig.dirty.is_empty() {
                self.migrations.get_mut(&p).unwrap().ready = true;
                flips.push(PartitionId::new(p));
            } else {
                self.schedule(p);
            }
        }
        flips
    }

    /// Commits a flip-ready migration: repoints the assignment table at
    /// the target and drops the partition from the source. The host must
    /// publish the route in the coordination service *before* calling
    /// this — that publish is the linearization point. Returns the
    /// `(source, target)` pair, or `None` if the migration is not (or no
    /// longer) flip-ready, e.g. because a write demoted it back to
    /// copying after the host saw it ready.
    pub fn complete_flip(&mut self, partition: PartitionId) -> Option<(NodeId, NodeId)> {
        let p = partition.raw();
        if !self.migrations.get(&p).is_some_and(|m| m.ready) {
            return None;
        }
        let mig = self.migrations.remove(&p).unwrap();
        self.assignments.insert(p, mig.target);
        if let Some(src) = self.nodes.iter().position(|n| n.id == mig.source) {
            self.nodes[src].store.drop_partition(partition);
        }
        self.counters.migrations_flipped.inc();
        self.counters.pages_copied.add(mig.pages_copied);
        self.counters.pages_recopied.add(mig.pages_recopied);
        self.update_imbalance();
        if let Some(t) = &self.telemetry {
            t.instant(
                consts::TRACK_CLUSTER,
                &format!("migration.flip.p{p}.{}to{}", mig.source, mig.target),
            );
        }
        Some((mig.source, mig.target))
    }

    /// When the copier next wants to run, for event-driven hosts.
    pub fn next_activation(&self) -> Option<SimInstant> {
        self.activations.peek_time()
    }

    // ----- audit ------------------------------------------------------

    /// Verifies the shadow accounting (see module docs). Uncharged.
    pub fn audit(&self) -> AuditReport {
        let mut report = AuditReport::default();
        for &raw in &self.shadow {
            report.checked += 1;
            let key = ExternalKey::from_raw(raw);
            let p = (raw & 0xFFF) as u16;
            let owner = self
                .assignments
                .get(&p)
                .copied()
                .or_else(|| self.ring.home_of(key.partition()));
            let sanctioned_extra = self.migrations.get(&p).map(|m| m.target);
            match owner {
                Some(owner_id) => {
                    let mut holders = 0usize;
                    let mut on_owner = false;
                    for node in &self.nodes {
                        if !node.store.contains(key) {
                            continue;
                        }
                        if node.id == owner_id {
                            on_owner = true;
                        }
                        if Some(node.id) != sanctioned_extra {
                            holders += 1;
                        }
                    }
                    if !on_owner {
                        report.missing.push(raw);
                    }
                    if holders > 1 {
                        report.duplicated.push(raw);
                    }
                }
                None => report.missing.push(raw),
            }
        }
        report
    }

    /// Number of keys the shadow set currently tracks.
    pub fn shadow_len(&self) -> usize {
        self.shadow.len()
    }

    // ----- internals --------------------------------------------------

    fn schedule(&mut self, p: u16) {
        let mig = self.migrations.get_mut(&p).unwrap();
        if mig.scheduled {
            return;
        }
        mig.scheduled = true;
        let at = self.cursor.max(self.clock.now());
        self.activations.push(at, (p, mig.gen));
    }

    /// Copies one batch of `p`'s pages, charging the copier's cursor.
    fn copy_batch(&mut self, p: u16) {
        let mig = self.migrations.get_mut(&p).unwrap();
        let mut batch: Vec<(u64, bool)> = Vec::with_capacity(self.batch_pages);
        while batch.len() < self.batch_pages {
            if let Some(raw) = mig.remaining.pop_front() {
                // A key both snapshotted and dirtied is copied once, from
                // the log, so the freshest value always lands last.
                if mig.dirty.contains(&raw) {
                    continue;
                }
                batch.push((raw, false));
            } else if let Some(&raw) = mig.dirty.iter().next() {
                mig.dirty.remove(&raw);
                batch.push((raw, true));
            } else {
                break;
            }
        }
        if batch.is_empty() {
            return;
        }
        let (source, target) = (mig.source, mig.target);
        let Some(src) = self.nodes.iter().position(|n| n.id == source) else {
            return;
        };
        let Some(tgt) = self.nodes.iter().position(|n| n.id == target) else {
            return;
        };
        // Uncharged peeks on the source, then uncharged installs on the
        // target; the transfer cost lands on the copier's own timeline.
        let pages: Vec<(u64, bool, Option<PageContents>)> = batch
            .iter()
            .map(|&(raw, redo)| {
                (
                    raw,
                    redo,
                    self.nodes[src].store.peek(ExternalKey::from_raw(raw)),
                )
            })
            .collect();
        let count = pages.len();
        let mut copied = 0;
        let mut recopied = 0;
        for (raw, redo, value) in pages {
            let key = ExternalKey::from_raw(raw);
            match value {
                Some(v) => {
                    let _ = self.nodes[tgt].store.ingest(key, v);
                }
                // Deleted (or lost) on the source since the snapshot:
                // propagate the absence.
                None => {
                    self.nodes[tgt].store.expunge(key);
                }
            }
            if redo {
                recopied += 1;
            } else {
                copied += 1;
            }
        }
        let start = self.cursor;
        let flight = self
            .transport
            .sample_batch_flight(&mut self.rng, count, count * 4096);
        self.cursor = start + flight;
        let mig = self.migrations.get_mut(&p).unwrap();
        mig.pages_copied += copied;
        mig.pages_recopied += recopied;
        if let Some(t) = &self.telemetry {
            t.record_span(
                consts::TRACK_CLUSTER,
                &format!("migration.copy.p{p}"),
                start,
                self.cursor,
            );
        }
    }

    /// The index of the node `key` routes to, assigning the partition on
    /// first touch.
    fn route(&mut self, key: ExternalKey) -> Result<usize, KvError> {
        let p = key.raw() as u16 & 0xFFF;
        let owner = match self.assignments.get(&p) {
            Some(&n) => n,
            None => {
                let home = self
                    .ring
                    .home_of(key.partition())
                    .ok_or(KvError::Unavailable)?;
                self.assignments.insert(p, home);
                home
            }
        };
        let idx = self
            .nodes
            .iter()
            .position(|n| n.id == owner)
            .ok_or(KvError::Unavailable)?;
        if !self.nodes[idx].alive {
            return Err(KvError::Unavailable);
        }
        Ok(idx)
    }

    /// Conservative dirty marking: record a write at issue time, before
    /// its outcome is known, so an applied-but-unacked timeout can never
    /// leave the target stale.
    fn note_write(&mut self, key: ExternalKey) {
        let p = key.raw() as u16 & 0xFFF;
        if let Some(mig) = self.migrations.get_mut(&p) {
            mig.dirty.insert(key.raw());
            if mig.ready {
                // The partition is no longer quiesced; demote and resume
                // copying. A flip the host already observed will now
                // refuse to commit.
                mig.ready = false;
                self.schedule(p);
            }
        }
    }

    fn update_imbalance(&mut self) {
        let mut counts: HashMap<NodeId, u64> = self.ring.nodes().map(|n| (n, 0)).collect();
        if counts.is_empty() {
            self.counters.ring_imbalance_permille.set(0);
            return;
        }
        for &owner in self.assignments.values() {
            if let Some(c) = counts.get_mut(&owner) {
                *c += 1;
            }
        }
        let total: u64 = counts.values().sum();
        if total == 0 {
            self.counters.ring_imbalance_permille.set(0);
            return;
        }
        let max = counts.values().copied().max().unwrap_or(0) as f64;
        let mean = total as f64 / counts.len() as f64;
        let permille = ((max - mean) / mean * 1000.0).round() as i64;
        self.counters.ring_imbalance_permille.set(permille);
    }
}

impl std::fmt::Debug for ClusterStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterStore")
            .field("nodes", &self.nodes.len())
            .field("assignments", &self.assignments.len())
            .field("migrations", &self.migrations.len())
            .field("shadow", &self.shadow.len())
            .finish()
    }
}

impl KeyValueStore for ClusterStore {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        self.note_write(key);
        let idx = self.route(key)?;
        self.nodes[idx].puts.inc();
        let r = self.nodes[idx].store.put(key, value);
        match &r {
            Ok(()) => {
                self.shadow.insert(key.raw());
            }
            Err(_) => self.nodes[idx].errors.inc(),
        }
        r
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        self.shadow.remove(&key.raw());
        let p = key.raw() as u16 & 0xFFF;
        // Propagate the delete to an in-flight migration target and
        // retire any pending re-copy of the key.
        if let Some(mig) = self.migrations.get_mut(&p) {
            mig.dirty.remove(&key.raw());
            let target = mig.target;
            if let Some(tgt) = self.nodes.iter().position(|n| n.id == target) {
                self.nodes[tgt].store.expunge(key);
            }
        }
        let Ok(idx) = self.route(key) else {
            return false;
        };
        self.nodes[idx].deletes.inc();
        self.nodes[idx].store.delete(key)
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        match self.route(key) {
            Ok(idx) => {
                self.nodes[idx].gets.inc();
                let pending = self.nodes[idx].store.begin_get(key);
                self.pending_gets
                    .entry(key.raw())
                    .or_default()
                    .push_back(idx);
                pending
            }
            Err(e) => {
                // No routable node: a pre-failed flight, resolved at
                // finish time without touching any store.
                let now = self.clock.now();
                PendingGet {
                    key,
                    result: Err(e),
                    issued_at: now,
                    completes_at: now,
                }
            }
        }
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        let served = self
            .pending_gets
            .get_mut(&pending.key.raw())
            .and_then(VecDeque::pop_front);
        match served {
            Some(idx) => {
                let r = self.nodes[idx].store.finish_get(pending);
                if r.is_err() {
                    self.nodes[idx].errors.inc();
                }
                r
            }
            // A pre-failed flight from `begin_get`.
            None => pending.result,
        }
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        let keys: Vec<ExternalKey> = batch.iter().map(|&(k, _)| k).collect();
        for &k in &keys {
            self.note_write(k);
        }
        // Split by owning node, preserving batch order within each shard.
        let mut shards: Vec<(usize, Vec<(ExternalKey, PageContents)>)> = Vec::new();
        for (k, v) in batch {
            let idx = self.route(k)?;
            match shards.iter_mut().find(|(i, _)| *i == idx) {
                Some((_, shard)) => shard.push((k, v)),
                None => shards.push((idx, vec![(k, v)])),
            }
        }
        let now = self.clock.now();
        let mut inner: Vec<(usize, PendingWrite)> = Vec::with_capacity(shards.len());
        for (idx, shard) in shards {
            match self.nodes[idx].store.begin_multi_write(shard) {
                Ok(p) => {
                    self.nodes[idx].puts.add(p.keys.len() as u64);
                    inner.push((idx, p));
                }
                Err(e) => {
                    self.nodes[idx].errors.inc();
                    // Settle the shards already issued before failing, so
                    // no inner flight is silently abandoned.
                    for (i, p) in inner {
                        self.nodes[i].store.finish_write(p);
                    }
                    return Err(e);
                }
            }
        }
        let issued_at = inner.iter().map(|(_, p)| p.issued_at).min().unwrap_or(now);
        let completes_at = inner
            .iter()
            .map(|(_, p)| p.completes_at)
            .max()
            .unwrap_or(now);
        if let Some(&first) = keys.first() {
            self.inflight_writes.push((first.raw(), inner));
        }
        Ok(PendingWrite {
            keys,
            issued_at,
            completes_at,
        })
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        let Some(&first) = pending.keys.first() else {
            return;
        };
        let Some(pos) = self
            .inflight_writes
            .iter()
            .position(|(k, _)| *k == first.raw())
        else {
            return;
        };
        let (_, inner) = self.inflight_writes.remove(pos);
        for (idx, p) in inner {
            for &k in &p.keys {
                self.shadow.insert(k.raw());
            }
            self.nodes[idx].store.finish_write(p);
        }
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        let p = partition.raw();
        // A dying partition's migration is moot.
        self.abort_migration(partition);
        self.shadow.retain(|&raw| (raw & 0xFFF) as u16 != p);
        let dropped = match self.assignments.get(&p) {
            Some(&owner) => match self.nodes.iter().position(|n| n.id == owner) {
                Some(idx) => self.nodes[idx].store.drop_partition(partition),
                None => 0,
            },
            None => 0,
        };
        self.assignments.remove(&p);
        self.update_imbalance();
        dropped
    }

    fn len(&self) -> usize {
        self.nodes.iter().map(|n| n.store.len()).sum()
    }

    fn contains(&self, key: ExternalKey) -> bool {
        let p = (key.raw() & 0xFFF) as u16;
        let owner = self
            .assignments
            .get(&p)
            .copied()
            .or_else(|| self.ring.home_of(key.partition()));
        match owner {
            Some(id) => self
                .nodes
                .iter()
                .find(|n| n.id == id)
                .is_some_and(|n| n.store.contains(key)),
            None => false,
        }
    }

    fn partition_keys(&self, partition: PartitionId) -> Vec<ExternalKey> {
        match self.assignments.get(&partition.raw()) {
            Some(&owner) => self
                .nodes
                .iter()
                .find(|n| n.id == owner)
                .map_or_else(Vec::new, |n| n.store.partition_keys(partition)),
            None => Vec::new(),
        }
    }

    fn peek(&self, key: ExternalKey) -> Option<PageContents> {
        let p = (key.raw() & 0xFFF) as u16;
        let owner = self
            .assignments
            .get(&p)
            .copied()
            .or_else(|| self.ring.home_of(key.partition()))?;
        self.nodes
            .iter()
            .find(|n| n.id == owner)
            .and_then(|n| n.store.peek(key))
    }

    fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for n in &self.nodes {
            let s = n.store.stats();
            total.gets += s.gets;
            total.get_misses += s.get_misses;
            total.puts += s.puts;
            total.batched_puts += s.batched_puts;
            total.multi_writes += s.multi_writes;
            total.deletes += s.deletes;
            total.evictions += s.evictions;
            total.cleanings += s.cleanings;
            total.recoveries += s.recoveries;
            total.faults_injected += s.faults_injected;
            total.timeouts += s.timeouts;
            total.unavailables += s.unavailables;
            total.retries += s.retries;
            total.failovers += s.failovers;
        }
        total
    }

    fn instrument(&mut self, registry: &Registry) {
        self.counters.register(registry);
        for node in &self.nodes {
            node.register(registry);
        }
    }
}

/// A cheaply clonable handle to one [`ClusterStore`], so the monitor's
/// fault pipeline (through the [`KeyValueStore`] face) and the host
/// agent (through [`with`](ClusterHandle::with), driving membership and
/// migrations) share the same cluster.
#[derive(Clone)]
pub struct ClusterHandle {
    inner: Rc<RefCell<ClusterStore>>,
}

impl ClusterHandle {
    /// Wraps a cluster for sharing.
    pub fn new(cluster: ClusterStore) -> Self {
        ClusterHandle {
            inner: Rc::new(RefCell::new(cluster)),
        }
    }

    /// Runs `f` with exclusive access to the cluster.
    pub fn with<R>(&self, f: impl FnOnce(&mut ClusterStore) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }
}

impl std::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.borrow().fmt(f)
    }
}

impl KeyValueStore for ClusterHandle {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn put(&mut self, key: ExternalKey, value: PageContents) -> Result<(), KvError> {
        self.inner.borrow_mut().put(key, value)
    }

    fn delete(&mut self, key: ExternalKey) -> bool {
        self.inner.borrow_mut().delete(key)
    }

    fn begin_get(&mut self, key: ExternalKey) -> PendingGet {
        self.inner.borrow_mut().begin_get(key)
    }

    fn finish_get(&mut self, pending: PendingGet) -> Result<PageContents, KvError> {
        self.inner.borrow_mut().finish_get(pending)
    }

    fn begin_multi_write(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
    ) -> Result<PendingWrite, KvError> {
        self.inner.borrow_mut().begin_multi_write(batch)
    }

    fn finish_write(&mut self, pending: PendingWrite) {
        self.inner.borrow_mut().finish_write(pending)
    }

    fn drop_partition(&mut self, partition: PartitionId) -> u64 {
        self.inner.borrow_mut().drop_partition(partition)
    }

    fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    fn contains(&self, key: ExternalKey) -> bool {
        self.inner.borrow().contains(key)
    }

    fn partition_keys(&self, partition: PartitionId) -> Vec<ExternalKey> {
        self.inner.borrow().partition_keys(partition)
    }

    fn peek(&self, key: ExternalKey) -> Option<PageContents> {
        self.inner.borrow().peek(key)
    }

    fn stats(&self) -> StoreStats {
        self.inner.borrow().stats()
    }

    fn instrument(&mut self, registry: &Registry) {
        self.inner.borrow_mut().instrument(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramStore;
    use fluidmem_mem::Vpn;
    use fluidmem_sim::SimDuration;

    fn key(vpn: u64, p: u16) -> ExternalKey {
        ExternalKey::new(Vpn::new(vpn), PartitionId::new(p))
    }

    fn cluster_with(clock: &SimClock, n: u32) -> ClusterStore {
        let mut c = ClusterStore::new(
            clock.clone(),
            SimRng::seed_from_u64(0xC1),
            TransportModel::infiniband_verbs(),
            64,
            8,
        );
        for id in 0..n {
            c.add_node(
                id,
                Box::new(DramStore::new(
                    1 << 24,
                    clock.clone(),
                    SimRng::seed_from_u64(u64::from(id) + 10),
                )),
            );
        }
        c
    }

    #[test]
    fn routes_are_sticky_per_partition() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 4);
        for vpn in 0..32 {
            c.put(key(vpn, 5), PageContents::Token(vpn)).unwrap();
        }
        let owner = c.owner_of(PartitionId::new(5)).unwrap();
        assert_eq!(c.node_len(owner), 32, "one partition lives on one node");
        for vpn in 0..32 {
            assert_eq!(c.get(key(vpn, 5)).unwrap(), PageContents::Token(vpn));
        }
        assert!(c.audit().is_clean());
    }

    #[test]
    fn distinct_partitions_spread_across_nodes() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 4);
        for p in 0..64 {
            c.put(key(1, p), PageContents::Token(u64::from(p))).unwrap();
        }
        let used: Vec<usize> = (0..4).map(|id| c.node_len(id)).collect();
        assert!(used.iter().filter(|&&n| n > 0).count() >= 3, "{used:?}");
        assert_eq!(used.iter().sum::<usize>(), 64);
    }

    #[test]
    fn migration_moves_every_page_and_flips_routing() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 2);
        let p = PartitionId::new(3);
        for vpn in 0..100 {
            c.put(key(vpn, 3), PageContents::Token(vpn)).unwrap();
        }
        let source = c.owner_of(p).unwrap();
        let target = 1 - source;
        assert!(c.start_migration(p, target));
        assert!(!c.start_migration(p, target), "double start refused");

        // Run the copier to completion.
        let mut flips = Vec::new();
        for _ in 0..1000 {
            clock.advance(SimDuration::from_micros(50));
            flips.extend(c.tick(clock.now()));
            if !flips.is_empty() {
                break;
            }
        }
        assert_eq!(flips, vec![p]);
        assert_eq!(c.complete_flip(p), Some((source, target)));
        assert_eq!(c.owner_of(p), Some(target));
        assert_eq!(c.node_len(source), 0, "source dropped the partition");
        assert_eq!(c.node_len(target), 100);
        for vpn in 0..100 {
            assert_eq!(c.get(key(vpn, 3)).unwrap(), PageContents::Token(vpn));
        }
        assert!(c.audit().is_clean());
        assert_eq!(c.counters().pages_copied.get(), 100);
    }

    #[test]
    fn writes_during_migration_are_recopied_not_lost() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 2);
        let p = PartitionId::new(7);
        for vpn in 0..64 {
            c.put(key(vpn, 7), PageContents::Token(vpn)).unwrap();
        }
        let source = c.owner_of(p).unwrap();
        let target = 1 - source;
        assert!(c.start_migration(p, target));

        // Interleave copier progress with overwrites: every write issued
        // before the flip must survive it via the dirty log.
        let mut flips = Vec::new();
        let mut written = 0u64;
        while flips.is_empty() {
            clock.advance(SimDuration::from_micros(30));
            if written < 64 {
                c.put(key(written, 7), PageContents::Token(written + 500))
                    .unwrap();
                written += 1;
            }
            flips.extend(c.tick(clock.now()));
            assert!(
                clock.now() < SimInstant::from_nanos(1 << 40),
                "must converge"
            );
        }
        assert!(c.complete_flip(p).is_some());
        assert!(written > 0);
        for vpn in 0..written {
            assert_eq!(
                c.get(key(vpn, 7)).unwrap(),
                PageContents::Token(vpn + 500),
                "vpn {vpn} must carry the overwrite, not the stale snapshot"
            );
        }
        for vpn in written..64 {
            assert_eq!(c.get(key(vpn, 7)).unwrap(), PageContents::Token(vpn));
        }
        assert!(c.audit().is_clean());
        assert!(c.counters().pages_recopied.get() > 0, "dirty log exercised");
    }

    #[test]
    fn write_during_flip_ready_demotes_the_migration() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 2);
        let p = PartitionId::new(2);
        for vpn in 0..8 {
            c.put(key(vpn, 2), PageContents::Token(vpn)).unwrap();
        }
        let target = 1 - c.owner_of(p).unwrap();
        assert!(c.start_migration(p, target));
        let mut flips = Vec::new();
        while flips.is_empty() {
            clock.advance(SimDuration::from_micros(50));
            flips.extend(c.tick(clock.now()));
        }
        // The host saw the ready signal but a write sneaks in first.
        c.put(key(0, 2), PageContents::Token(999)).unwrap();
        assert_eq!(
            c.complete_flip(p),
            None,
            "flip must refuse a dirty partition"
        );
        let mut flips = Vec::new();
        while flips.is_empty() {
            clock.advance(SimDuration::from_micros(50));
            flips.extend(c.tick(clock.now()));
        }
        assert!(c.complete_flip(p).is_some());
        assert_eq!(c.get(key(0, 2)).unwrap(), PageContents::Token(999));
        assert!(c.audit().is_clean());
    }

    #[test]
    fn deletes_during_migration_do_not_resurrect() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 2);
        let p = PartitionId::new(9);
        for vpn in 0..32 {
            c.put(key(vpn, 9), PageContents::Token(vpn)).unwrap();
        }
        let target = 1 - c.owner_of(p).unwrap();
        assert!(c.start_migration(p, target));
        // Delete half the partition while the copier runs.
        for vpn in 0..16 {
            assert!(c.delete(key(vpn, 9)));
        }
        let mut flips = Vec::new();
        while flips.is_empty() {
            clock.advance(SimDuration::from_micros(50));
            flips.extend(c.tick(clock.now()));
        }
        assert!(c.complete_flip(p).is_some());
        for vpn in 0..16 {
            assert!(
                matches!(c.get(key(vpn, 9)), Err(KvError::NotFound(_))),
                "deleted vpn {vpn} must stay deleted after the flip"
            );
        }
        for vpn in 16..32 {
            assert_eq!(c.get(key(vpn, 9)).unwrap(), PageContents::Token(vpn));
        }
        assert!(c.audit().is_clean());
    }

    #[test]
    fn copier_never_touches_the_shared_clock() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 2);
        let p = PartitionId::new(4);
        for vpn in 0..256 {
            c.put(key(vpn, 4), PageContents::Token(vpn)).unwrap();
        }
        let target = 1 - c.owner_of(p).unwrap();
        let before = clock.now();
        assert!(c.start_migration(p, target));
        // Ticks at a frozen clock: the copier makes progress on its own
        // cursor without ever advancing shared time.
        for _ in 0..1000 {
            c.tick(clock.now());
        }
        assert_eq!(
            clock.now(),
            before,
            "tick must not advance the shared clock"
        );
    }

    #[test]
    fn abort_discards_partial_copies() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 2);
        let p = PartitionId::new(6);
        for vpn in 0..64 {
            c.put(key(vpn, 6), PageContents::Token(vpn)).unwrap();
        }
        let source = c.owner_of(p).unwrap();
        let target = 1 - source;
        assert!(c.start_migration(p, target));
        clock.advance(SimDuration::from_micros(100));
        c.tick(clock.now()); // one batch lands on the target
        assert!(c.node_len(target) > 0);
        assert!(c.abort_migration(p));
        assert_eq!(c.node_len(target), 0, "partial copies discarded");
        assert_eq!(c.owner_of(p), Some(source));
        for vpn in 0..64 {
            assert_eq!(c.get(key(vpn, 6)).unwrap(), PageContents::Token(vpn));
        }
        assert!(c.audit().is_clean());
    }

    #[test]
    fn failed_target_is_reported_for_retargeting() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 3);
        let p = PartitionId::new(11);
        for vpn in 0..32 {
            c.put(key(vpn, 11), PageContents::Token(vpn)).unwrap();
        }
        let source = c.owner_of(p).unwrap();
        let target = (source + 1) % 3;
        let third = (source + 2) % 3;
        assert!(c.start_migration(p, target));
        clock.advance(SimDuration::from_micros(100));
        c.tick(clock.now());
        let retarget = c.fail_node(target);
        assert_eq!(retarget, vec![p]);
        assert!(c.migration_of(p).is_none(), "aborted by the failure");
        assert!(c.start_migration(p, third));
        let mut flips = Vec::new();
        while flips.is_empty() {
            clock.advance(SimDuration::from_micros(50));
            flips.extend(c.tick(clock.now()));
        }
        assert_eq!(c.complete_flip(p), Some((source, third)));
        for vpn in 0..32 {
            assert_eq!(c.get(key(vpn, 11)).unwrap(), PageContents::Token(vpn));
        }
        assert!(c.audit().is_clean());
    }

    #[test]
    fn rebalance_plan_follows_ring_changes() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 2);
        for p in 0..32 {
            c.put(key(1, p), PageContents::Token(u64::from(p))).unwrap();
        }
        assert!(
            c.rebalance_plan().is_empty(),
            "in-balance cluster plans nothing"
        );
        c.add_node(
            2,
            Box::new(DramStore::new(
                1 << 24,
                clock.clone(),
                SimRng::seed_from_u64(99),
            )),
        );
        let plan = c.rebalance_plan();
        assert!(!plan.is_empty(), "the new node must attract partitions");
        assert!(plan.iter().all(|&(_, t)| t == 2));
        for &(p, t) in &plan {
            assert!(c.start_migration(p, t));
        }
        loop {
            clock.advance(SimDuration::from_micros(50));
            for p in c.tick(clock.now()) {
                c.complete_flip(p);
            }
            if c.migrations_in_flight() == 0 {
                break;
            }
        }
        assert!(c.rebalance_plan().is_empty(), "converged after migrating");
        assert!(c.audit().is_clean());
        assert!(c.node_len(2) > 0);
    }

    #[test]
    fn async_ops_route_like_sync_ops() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 3);
        // Overlapped gets against different partitions, finished out of
        // order — the per-key FIFO must pair each finish with its node.
        c.put(key(1, 0), PageContents::Token(10)).unwrap();
        c.put(key(1, 1), PageContents::Token(11)).unwrap();
        let a = c.begin_get(key(1, 0));
        let b = c.begin_get(key(1, 1));
        assert_eq!(c.finish_get(b).unwrap(), PageContents::Token(11));
        assert_eq!(c.finish_get(a).unwrap(), PageContents::Token(10));

        // A multi-write spanning partitions on different nodes.
        let batch: Vec<(ExternalKey, PageContents)> = (0..16)
            .map(|p| (key(2, p), PageContents::Token(u64::from(p) + 100)))
            .collect();
        let pending = c.begin_multi_write(batch).unwrap();
        c.finish_write(pending);
        for p in 0..16 {
            assert_eq!(
                c.get(key(2, p)).unwrap(),
                PageContents::Token(u64::from(p) + 100)
            );
        }
        assert!(c.audit().is_clean());
    }

    #[test]
    fn empty_ring_fails_cleanly() {
        let clock = SimClock::new();
        let mut c = ClusterStore::new(
            clock.clone(),
            SimRng::seed_from_u64(1),
            TransportModel::local(),
            8,
            4,
        );
        assert!(matches!(
            c.put(key(1, 0), PageContents::Zero),
            Err(KvError::Unavailable)
        ));
        let pending = c.begin_get(key(1, 0));
        assert!(matches!(c.finish_get(pending), Err(KvError::Unavailable)));
    }

    #[test]
    fn drop_partition_clears_shadow_and_migration() {
        let clock = SimClock::new();
        let mut c = cluster_with(&clock, 2);
        let p = PartitionId::new(5);
        for vpn in 0..16 {
            c.put(key(vpn, 5), PageContents::Token(vpn)).unwrap();
        }
        let target = 1 - c.owner_of(p).unwrap();
        assert!(c.start_migration(p, target));
        assert_eq!(c.drop_partition(p), 16);
        assert_eq!(c.shadow_len(), 0);
        assert!(c.migration_of(p).is_none());
        assert_eq!(c.len(), 0);
    }
}
