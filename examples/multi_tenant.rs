//! Multi-tenant hypervisor: several VMs sharing one monitor, one DRAM
//! budget, and one key-value store — the paper's deployment model
//! (§V-A: the LRU list bounds DRAM "for all VMs"; §IV: partitions keep
//! tenants apart in the shared store).
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use fluidmem::coord::{CoordCluster, PartitionTable, VmIdentity};
use fluidmem::core::{FluidMemHypervisor, MonitorConfig};
use fluidmem::kv::RamCloudStore;
use fluidmem::mem::PageClass;
use fluidmem::sim::{SimClock, SimRng};

fn main() {
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(21);

    // Partition allocation through the coordination service.
    let mut cluster = CoordCluster::new(3, clock.clone(), rng.fork("coord"));
    PartitionTable::init(&mut cluster).unwrap();

    // One hypervisor: 512 pages (2 MB) of DRAM shared by every tenant.
    let store = RamCloudStore::new(1 << 30, clock.clone(), rng.fork("store"));
    let mut hv = FluidMemHypervisor::new(
        MonitorConfig::new(512),
        Box::new(store),
        clock.clone(),
        rng.fork("hv"),
    );

    // Three tenants land on the host.
    let mut tenants = Vec::new();
    for pid in [101u64, 102, 103] {
        let partition =
            PartitionTable::allocate(&mut cluster, VmIdentity { pid, hypervisor: 1 }).unwrap();
        let vm = hv.create_vm(pid, partition);
        let region = hv.map_region(vm, 2048, PageClass::Anonymous);
        tenants.push((pid, vm, region));
    }

    // Everyone boots and touches a modest working set.
    for &(_, vm, region) in &tenants {
        for i in 0..128 {
            hv.access(vm, region.page(i), true);
        }
    }
    println!(
        "after boot: shared budget {} / {} pages",
        hv.resident_pages(),
        hv.capacity()
    );
    for &(pid, vm, _) in &tenants {
        println!("  vm {pid}: {} pages resident", hv.resident_pages_of(vm));
    }

    // Tenant 103 goes noisy: it churns through 4x the shared budget.
    let (_, noisy_vm, noisy_region) = tenants[2];
    for round in 0..2 {
        for i in 0..2048 {
            hv.access(noisy_vm, noisy_region.page(i), true);
        }
        let _ = round;
    }
    println!("\nafter tenant 103 churns 4x the budget:");
    for &(pid, vm, _) in &tenants {
        println!(
            "  vm {pid}: {} pages resident, {} major faults",
            hv.resident_pages_of(vm),
            hv.counters_of(vm).major_faults
        );
    }
    println!("(the shared first-touch LRU let the noisy tenant displace the others)");

    // Tenant 101 leaves; its pages vanish from the store instantly.
    let (pid, vm, _) = tenants[0];
    let store_len_before = hv.monitor().store().len();
    hv.destroy_vm(vm);
    println!(
        "\nvm {pid} shut down: store {} -> {} pages, {} VMs remain",
        store_len_before,
        hv.monitor().store().len(),
        hv.vm_count()
    );

    // The quiet survivor still reads its data fine.
    let (pid, vm, region) = tenants[1];
    let rep = hv.access(vm, region.page(0), false);
    println!(
        "vm {pid} touch after neighbor churn + shutdown: {:?} in {}",
        rep.outcome, rep.latency
    );
}
