//! Near-zero footprint: squeeze a booted VM down toward one page and
//! watch where SSH and ICMP stop answering — the paper's Table III
//! experiment (§VI-E).
//!
//! ```sh
//! cargo run --release --example near_zero_footprint
//! ```

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig};
use fluidmem::kv::RamCloudStore;
use fluidmem::sim::{SimClock, SimRng};
use fluidmem::vm::{GuestOsProfile, IcmpService, SshService, VirtualizationMode, Vm};

fn main() {
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(3);
    let store = RamCloudStore::new(2 << 30, clock.clone(), rng.fork("store"));
    let backend = FluidMemMemory::new(
        MonitorConfig::new(1 << 20),
        Box::new(store),
        PartitionId::new(0),
        clock,
        rng.fork("monitor"),
    );
    let mut vm = Vm::boot(Box::new(backend), GuestOsProfile::paper_boot());
    println!(
        "booted guest: {} pages resident ({:.1} MB)\n",
        vm.footprint_pages(),
        vm.footprint_mb()
    );

    println!(
        "{:>10}  {:>10}  {:>14}  {:>14}",
        "capacity", "MB", "SSH login", "ICMP echo"
    );
    for capacity in [4096u64, 1024, 512, 180, 120, 80, 40, 2] {
        vm.backend_mut().set_local_capacity(capacity).unwrap();
        let ssh = match SshService::new().attempt_login(&mut vm) {
            Ok(t) => format!("ok in {t}"),
            Err(e) => format!("FAIL ({e})"),
        };
        let icmp = match IcmpService::new().respond(&mut vm) {
            Ok(t) => format!("ok in {t}"),
            Err(_) => "FAIL".to_string(),
        };
        println!(
            "{capacity:>10}  {:>10.3}  {ssh:>14.14}  {icmp:>14.14}",
            capacity as f64 * 4096.0 / 1048576.0
        );
    }

    // One page: KVM deadlocks; full emulation survives (Table III's last
    // row).
    vm.backend_mut().set_local_capacity(1).unwrap();
    println!(
        "\nat 1 page under KVM: {:?}",
        SshService::new().attempt_login(&mut vm).unwrap_err()
    );
    vm.set_mode(VirtualizationMode::FullEmulation);
    println!(
        "at 1 page under full emulation: functional but non-responsive ({:?})",
        IcmpService::new().respond(&mut vm).unwrap_err()
    );

    // Revival: give the buffer back and the VM returns instantly.
    vm.set_mode(VirtualizationMode::Kvm);
    vm.backend_mut().set_local_capacity(4096).unwrap();
    let t = SshService::new()
        .attempt_login(&mut vm)
        .expect("revived VM accepts logins");
    println!("\nrevived with 4096 pages: SSH login in {t}");
}
