//! Elastic VM memory: grow a VM beyond its host allotment with hotplug,
//! then shrink it — the operator-side flexibility of paper §III/§VI-E
//! that swap-based disaggregation cannot offer.
//!
//! ```sh
//! cargo run --release --example elastic_vm
//! ```

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig};
use fluidmem::kv::RamCloudStore;
use fluidmem::mem::{MemoryBackend, PageClass};
use fluidmem::sim::{SimClock, SimRng};
use fluidmem::swap::{SwapBackedMemory, SwapConfig};

fn main() {
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(9);

    // --- The swap baseline cannot do this at all. ---
    let mut swap_vm = SwapBackedMemory::new(
        SwapConfig::paper_default(4096),
        Box::new(fluidmem::block::NvmeofDevice::new(
            1 << 16,
            clock.clone(),
            rng.fork("swapdev"),
        )),
        Box::new(fluidmem::block::SsdDevice::new(
            1 << 16,
            clock.clone(),
            rng.fork("fsdev"),
        )),
        clock.clone(),
        rng.fork("swap"),
    );
    match swap_vm.set_local_capacity(1024) {
        Err(e) => println!("swap baseline: {e}"),
        Ok(()) => unreachable!("swap must refuse operator resizes"),
    }

    // --- FluidMem: resize freely, no guest cooperation. ---
    let store = RamCloudStore::new(1 << 30, clock.clone(), rng.fork("store"));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(4096),
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        rng.fork("fluidmem"),
    );

    // The VM starts with 16 MB "physical" memory, all FluidMem-backed.
    let base = vm.map_region(4096, PageClass::Anonymous);
    for i in 0..base.pages() {
        vm.access(base.page(i), true);
    }
    println!(
        "booted: {} pages resident (capacity {})",
        vm.resident_pages(),
        vm.local_capacity_pages()
    );

    // Grow: hotplug 32 MB more — the guest sees new memory instantly.
    let hotplugged = vm.hotplug_add(8192, PageClass::Anonymous);
    for i in 0..hotplugged.pages() {
        vm.access(hotplugged.page(i), true);
    }
    println!(
        "after hotplug of {} pages: footprint {} (LRU bound {})",
        hotplugged.pages(),
        vm.resident_pages(),
        vm.local_capacity_pages()
    );

    // The operator grows the local buffer for a burst...
    vm.set_local_capacity(8192).unwrap();
    println!(
        "operator grew the buffer: capacity {}",
        vm.local_capacity_pages()
    );

    // ...then reclaims the host: shrink to 256 pages (1 MB). Everything
    // else moves to RAMCloud, transparently.
    vm.set_local_capacity(256).unwrap();
    vm.drain_writes();
    println!(
        "operator shrank the buffer: footprint {} pages, {} pages now in RAMCloud",
        vm.resident_pages(),
        vm.monitor().store().len()
    );

    // The guest keeps running; touching cold memory refaults remotely.
    let report = vm.access(base.page(0), false);
    println!(
        "guest touch after shrink: {:?} in {}",
        report.outcome, report.latency
    );
    println!(
        "\ntotal monitor evictions: {}",
        vm.monitor().stats().evictions
    );
}
