//! Quickstart: disaggregate a VM's memory through FluidMem and watch the
//! monitor work.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fluidmem::coord::{CoordCluster, PartitionTable, VmIdentity};
use fluidmem::core::{FluidMemMemory, MonitorConfig};
use fluidmem::kv::RamCloudStore;
use fluidmem::mem::{MemoryBackend, PageClass, PageContents};
use fluidmem::sim::{SimClock, SimRng};

fn main() {
    // Everything in one experiment shares a virtual clock; all randomness
    // flows from one seed, so this run is exactly reproducible.
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(42);

    // A coordination cluster hands out this VM's globally-unique
    // virtual partition (paper §IV).
    let mut cluster = CoordCluster::new(3, clock.clone(), rng.fork("coord"));
    PartitionTable::init(&mut cluster).expect("cluster is healthy");
    let partition = PartitionTable::allocate(
        &mut cluster,
        VmIdentity {
            pid: 4242,
            hypervisor: 1,
        },
    )
    .expect("partitions available");
    println!("allocated {partition} for the VM");

    // Remote memory: a RAMCloud-like store reached over InfiniBand verbs.
    let store = RamCloudStore::new(1 << 30, clock.clone(), rng.fork("store"));

    // The FluidMem monitor: 256 pages (1 MB) of local DRAM for the VM.
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(256),
        Box::new(store),
        partition,
        clock.clone(),
        rng.fork("monitor"),
    );

    // A 4 MB anonymous region — four times the local allotment.
    let region = vm.map_region(1024, PageClass::Anonymous);

    // Write a recognizable pattern through every page.
    for i in 0..region.pages() {
        vm.write_page(region.page(i), PageContents::Token(0xC0FFEE + i));
    }
    println!(
        "wrote {} pages; resident {} / {} (rest already in RAMCloud)",
        region.pages(),
        vm.resident_pages(),
        vm.local_capacity_pages()
    );

    // Read everything back: most pages must round-trip through the store.
    let mut intact = 0;
    for i in 0..region.pages() {
        let (contents, _report) = vm.read_page(region.page(i));
        if contents == PageContents::Token(0xC0FFEE + i) {
            intact += 1;
        }
    }
    println!(
        "verified {intact}/{} pages intact after remote round trips",
        region.pages()
    );

    let stats = vm.monitor().stats();
    println!(
        "monitor: {} faults ({} zero-fills, {} remote reads, {} steals), {} evictions",
        stats.faults,
        stats.zero_fills,
        stats.remote_reads,
        stats.write_list_steals,
        stats.evictions
    );
    println!(
        "virtual time elapsed: {} (wall-clock cost of the whole run: microseconds)",
        clock.now()
    );
    assert_eq!(intact, region.pages());
}
