//! MongoDB + YCSB over disaggregated memory: the paper's §VI-D2
//! scenario. A WiredTiger-style cache larger than local DRAM either
//! fights kswapd (swap) or transparently spills to RAMCloud (FluidMem).
//!
//! ```sh
//! cargo run --release --example mongodb_ycsb
//! ```

use fluidmem::block::SsdDevice;
use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig};
use fluidmem::kv::RamCloudStore;
use fluidmem::sim::{SimClock, SimRng};
use fluidmem::swap::{SwapBackedMemory, SwapConfig};
use fluidmem::vm::{GuestOsProfile, Vm};
use fluidmem::workloads::docstore::{DocStoreConfig, DocumentStore};
use fluidmem::workloads::ycsb::{run_workload_c, WorkloadC};

const SCALE: u64 = 64; // run at 1/64 of the paper's sizes
const DRAM_PAGES: u64 = 262_144 / SCALE;

fn run(label: &str, mut vm: Vm) {
    // A 2 GB (scaled) WiredTiger cache over a 5 GB (scaled) record set.
    let config = DocStoreConfig::paper(SCALE, (2 << 30) / SCALE);
    let disk = SsdDevice::new(
        config.record_count * 2,
        vm.backend().clock().clone(),
        SimRng::seed_from_u64(11),
    );
    let mut store = DocumentStore::new(config, Box::new(disk), vm.backend_mut());
    let workload = WorkloadC::new(store.record_count() * 2);
    let mut rng = SimRng::seed_from_u64(12);
    let report = run_workload_c(vm.backend_mut(), &mut store, &workload, &mut rng);
    println!(
        "{label:<24} avg read {:>7.1} µs over {} ops ({} cache hits, {} disk reads, {} major faults)",
        report.avg_latency_us(),
        report.operations,
        report.cache_hits,
        store.disk_reads(),
        vm.backend().counters().major_faults,
    );
}

fn main() {
    println!("YCSB workload C (read-only, zipfian) on a MongoDB-like store\n");

    // Swap-backed VM: 1 GB DRAM + NVMeoF swap, readahead off (paper §VI-D2).
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(1);
    let mut swap_config = SwapConfig::paper_default(DRAM_PAGES);
    swap_config.page_cluster = 0;
    let swap_backend = SwapBackedMemory::new(
        swap_config,
        Box::new(fluidmem::block::NvmeofDevice::new(
            1 << 18,
            clock.clone(),
            rng.fork("swapdev"),
        )),
        Box::new(SsdDevice::new(1 << 18, clock.clone(), rng.fork("fsdev"))),
        clock,
        rng.fork("swap"),
    );
    run(
        "Swap (NVMeoF):",
        Vm::boot(Box::new(swap_backend), GuestOsProfile::scaled_down(SCALE)),
    );

    // FluidMem VM: same resident budget, remote memory in RAMCloud.
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(1);
    let store = RamCloudStore::new(8 << 30, clock.clone(), rng.fork("store"));
    let fm_backend = FluidMemMemory::new(
        MonitorConfig::new(DRAM_PAGES),
        Box::new(store),
        PartitionId::new(0),
        clock,
        rng.fork("fluidmem"),
    );
    run(
        "FluidMem (RAMCloud):",
        Vm::boot(Box::new(fm_backend), GuestOsProfile::scaled_down(SCALE)),
    );

    println!("\nFluidMem gives the storage engine native memory capacity (paper Fig. 5):");
    println!("the WiredTiger cache works as designed instead of fighting kswapd.");
}
