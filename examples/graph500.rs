//! Graph500 over disaggregated memory: the paper's §VI-D1 workload at a
//! laptop-friendly scale, comparing FluidMem/RAMCloud against
//! swap/NVMeoF when the working set is 2.4x local DRAM.
//!
//! ```sh
//! cargo run --release --example graph500
//! ```

use fluidmem::mem::PAGE_SIZE;
use fluidmem::sim::SimRng;
use fluidmem::testbed::{BackendKind, Testbed};
use fluidmem::vm::{GuestOsProfile, Vm};
use fluidmem::workloads::graph500::{generate_edges, run_benchmark, CsrGraph, Graph500Config};

fn main() {
    let config = Graph500Config::quick(14, 8);
    println!(
        "generating a Kronecker graph: scale {}, {} vertices, {} edges",
        config.scale,
        config.vertices(),
        config.edges()
    );
    let edges = generate_edges(&config);
    let graph = CsrGraph::build(config.vertices(), &edges);

    // Size DRAM so the BFS working set is 2.4x local memory (the paper's
    // Figure 4c regime), with the OS taking its usual 31%.
    let wss_pages =
        (8 * (config.vertices() + 1) + 4 * graph.adjacency_len() + 12 * config.vertices())
            .div_ceil(PAGE_SIZE as u64);
    let dram = (wss_pages as f64 / 2.4) as u64;
    let os_pages = (dram as f64 * 0.31) as u64;
    println!("WSS {wss_pages} pages over {dram} DRAM pages (+{os_pages} OS pages)\n");

    for kind in [BackendKind::FluidMemRamCloud, BackendKind::SwapNvmeof] {
        let mut testbed = Testbed::scaled_down(64);
        testbed.local_dram_pages = dram;
        testbed.device_blocks = (wss_pages + os_pages) * 8;
        testbed.store_bytes = ((wss_pages + os_pages) * 8 * 4096) as usize;
        let backend = testbed.build(kind, 7);
        let mut vm = Vm::boot(backend, GuestOsProfile::scaled_to(os_pages));
        let mut rng = SimRng::seed_from_u64(7);
        let report = run_benchmark(vm.backend_mut(), &graph, &config, &mut rng);
        println!(
            "{:<22} {:>8.2} MTEPS (harmonic mean over {} roots), {} major faults",
            kind.label(),
            report.harmonic_mean_teps() / 1e6,
            report.runs.len(),
            vm.backend().counters().major_faults
        );
    }
    println!("\nFluidMem wins because every idle OS page can live remotely and its");
    println!("fault path hides the network round trip behind the eviction (paper Fig. 4).");
}
