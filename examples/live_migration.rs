//! Live migration over disaggregated memory: move a running VM between
//! hypervisors *without copying its memory* — the pages already live in
//! the shared key-value store (§VII: "live migration and memory
//! disaggregation are complementary").
//!
//! ```sh
//! cargo run --release --example live_migration
//! ```

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig};
use fluidmem::kv::{RamCloudStore, SharedStore};
use fluidmem::mem::{MemoryBackend, PageClass, PageContents};
use fluidmem::sim::{SimClock, SimRng};

fn main() {
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(33);

    // One remote RAMCloud shared by every hypervisor in the rack.
    let shared = SharedStore::new(Box::new(RamCloudStore::new(
        1 << 30,
        clock.clone(),
        rng.fork("store"),
    )));

    // The VM runs on hypervisor A with a 256-page local buffer.
    let mut source = FluidMemMemory::new(
        MonitorConfig::new(256),
        Box::new(shared.handle()),
        PartitionId::new(5),
        clock.clone(),
        rng.fork("hypervisor-a"),
    );
    let region = source.map_region(1024, PageClass::Anonymous);
    for i in 0..region.pages() {
        source.write_page(region.page(i), PageContents::Token(0xDA7A + i));
    }
    println!(
        "VM running on hypervisor A: {} pages resident, {} already remote",
        source.resident_pages(),
        source.monitor().store().len()
    );

    // --- Migration ---
    // Phase 1 (source): push the residual resident pages to the shared
    // store and capture the tiny control-plane image.
    let t0 = clock.now();
    let image = source.migrate_out();
    let evict_time = clock.now() - t0;
    println!(
        "\nmigrate_out on A: flushed residual pages in {evict_time}; image = {} regions + {} seen-page entries",
        image.regions.len(),
        image.seen.len()
    );

    // Phase 2 (destination): hypervisor B rebuilds the VM from the image
    // over a handle to the SAME store. No page data crossed between A
    // and B directly.
    let t0 = clock.now();
    let mut dest = FluidMemMemory::migrate_in(
        MonitorConfig::new(256),
        Box::new(shared.handle()),
        image,
        clock.clone(),
        rng.fork("hypervisor-b"),
    );
    let restore_time = clock.now() - t0;
    println!("migrate_in on B: VM resumable after {restore_time} (zero pages copied)");

    // The guest resumes on B; its memory is all there, faulted in on
    // demand from the store.
    let mut intact = 0;
    for i in 0..region.pages() {
        let (contents, _) = dest.read_page(region.page(i));
        if contents == PageContents::Token(0xDA7A + i) {
            intact += 1;
        }
    }
    println!(
        "\nVM on hypervisor B verified {intact}/{} pages intact; {} resident after warm-up",
        region.pages(),
        dest.resident_pages()
    );
    assert_eq!(intact, region.pages());
    println!(
        "monitor on B: {} remote reads (demand paging from the shared store)",
        dest.monitor().stats().remote_reads
    );
}
