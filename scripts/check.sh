#!/usr/bin/env sh
# Full local gate: formatting, lints, and the whole test sweep.
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --all-targets (examples + benches included)"
cargo build -q --workspace --all-targets

echo "==> cargo test"
cargo test -q --workspace

echo "==> telemetry smoke: fluidmem trace --scenario pmbench"
trace_file="$(mktemp)"
cargo run -q --bin fluidmem -- trace --scenario pmbench --out "$trace_file" > /dev/null
test -s "$trace_file" || { echo "telemetry smoke: empty trace" >&2; exit 1; }
grep -q '"kv.read.flight"' "$trace_file" || {
    echo "telemetry smoke: no kv.read.flight spans in trace" >&2
    exit 1
}
rm -f "$trace_file"

echo "==> all checks passed"
