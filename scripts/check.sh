#!/usr/bin/env sh
# Full local gate: formatting, lints, and the whole test sweep.
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> all checks passed"
