#!/usr/bin/env sh
# Full local gate: formatting, lints, and the whole test sweep.
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --all-targets (examples + benches included)"
cargo build -q --workspace --all-targets

echo "==> cargo test"
cargo test -q --workspace

echo "==> telemetry smoke: fluidmem trace --scenario pmbench"
trace_file="$(mktemp)"
cargo run -q --bin fluidmem -- trace --scenario pmbench --out "$trace_file" > /dev/null
test -s "$trace_file" || { echo "telemetry smoke: empty trace" >&2; exit 1; }
grep -q '"kv.read.flight"' "$trace_file" || {
    echo "telemetry smoke: no kv.read.flight spans in trace" >&2
    exit 1
}
rm -f "$trace_file"

echo "==> multi-VM smoke: scaling --smoke (twice, JSON must be byte-identical)"
scaling_a="$(mktemp)"
scaling_b="$(mktemp)"
cargo run -q --release -p fluidmem-bench --bin scaling -- --smoke --json "$scaling_a" > /dev/null
cargo run -q --release -p fluidmem-bench --bin scaling -- --smoke --json "$scaling_b" > /dev/null
test -s "$scaling_a" || { echo "scaling smoke: empty JSON output" >&2; exit 1; }
cmp "$scaling_a" "$scaling_b" || {
    echo "scaling smoke: JSON output not deterministic" >&2
    exit 1
}
grep -q '"bench":"scaling_policy"' "$scaling_a" || {
    echo "scaling smoke: policy face-off records missing" >&2
    exit 1
}
rm -f "$scaling_a" "$scaling_b"

echo "==> big-fleet smoke: scaling --big --smoke (twice, byte-identical, floor intact, flat per-VM rate)"
big_out_a="$(mktemp)"
big_out_b="$(mktemp)"
big_json_a="$(mktemp)"
big_json_b="$(mktemp)"
cargo run -q --release -p fluidmem-bench --bin scaling -- --big --smoke --json "$big_json_a" > "$big_out_a"
cargo run -q --release -p fluidmem-bench --bin scaling -- --big --smoke --json "$big_json_b" > "$big_out_b"
test -s "$big_json_a" || { echo "big-fleet smoke: empty JSON output" >&2; exit 1; }
cmp "$big_out_a" "$big_out_b" || {
    echo "big-fleet smoke: stdout not deterministic" >&2
    exit 1
}
cmp "$big_json_a" "$big_json_b" || {
    echo "big-fleet smoke: JSON output not deterministic" >&2
    exit 1
}
grep -q '"bench":"scaling_big"' "$big_json_a" || {
    echo "big-fleet smoke: sweep records missing" >&2
    exit 1
}
# The slo_guarded floor guarantee: throttling a donor VM below the
# progress floor is a gate failure at any fleet size.
if grep '"bench":"scaling_big"' "$big_json_a" | grep -qv '"floor_misses":0'; then
    echo "big-fleet smoke: a VM was throttled below the progress floor" >&2
    exit 1
fi
# Per-VM resources are constant across fleet sizes, so the slab data
# plane must keep the N-core-normalized per-VM rate roughly flat:
# N=64 falling below half the N=16 rate means something superlinear
# crept back into the fault path.
tpv16="$(grep '"bench":"scaling_big"' "$big_json_a" | grep '"n_vms":16,' \
    | sed 's/.*"throughput_per_vm_ops_s":\([0-9.eE+-]*\).*/\1/')"
tpv64="$(grep '"bench":"scaling_big"' "$big_json_a" | grep '"n_vms":64,' \
    | sed 's/.*"throughput_per_vm_ops_s":\([0-9.eE+-]*\).*/\1/')"
test -n "$tpv16" && test -n "$tpv64" || {
    echo "big-fleet smoke: throughput fields missing from JSON" >&2
    exit 1
}
awk -v small="$tpv16" -v big="$tpv64" 'BEGIN { exit (big >= 0.5 * small) ? 0 : 1 }' || {
    echo "big-fleet smoke: per-VM throughput at N=64 ($tpv64) fell below half of N=16 ($tpv16)" >&2
    exit 1
}
rm -f "$big_out_a" "$big_out_b" "$big_json_a" "$big_json_b"

echo "==> lint: unordered-container iteration in output-producing crates"
# Bench tables and telemetry exports are pinned byte-for-byte by the
# determinism gates above; HashMap/HashSet iteration order must never
# feed them. Sort first (or use a BTreeMap), or mark a genuinely
# order-insensitive use with '// lint: order-independent'.
lint_hits="$(grep -rn 'HashMap\|HashSet' crates/bench/src crates/telemetry/src \
    | grep -v 'lint: order-independent' || true)"
if [ -n "$lint_hits" ]; then
    echo "unordered container in an output-producing crate without a sort or marker:" >&2
    echo "$lint_hits" >&2
    exit 1
fi

echo "==> cluster smoke: scaling --smoke --cluster (twice, byte-identical, zero lost pages)"
cluster_out_a="$(mktemp)"
cluster_out_b="$(mktemp)"
cluster_json_a="$(mktemp)"
cluster_json_b="$(mktemp)"
cargo run -q --release -p fluidmem-bench --bin scaling -- --smoke --cluster --json "$cluster_json_a" > "$cluster_out_a"
cargo run -q --release -p fluidmem-bench --bin scaling -- --smoke --cluster --json "$cluster_json_b" > "$cluster_out_b"
test -s "$cluster_json_a" || { echo "cluster smoke: empty JSON output" >&2; exit 1; }
cmp "$cluster_out_a" "$cluster_out_b" || {
    echo "cluster smoke: stdout not deterministic" >&2
    exit 1
}
cmp "$cluster_json_a" "$cluster_json_b" || {
    echo "cluster smoke: JSON output not deterministic" >&2
    exit 1
}
grep -q '"bench":"scaling_cluster"' "$cluster_json_a" || {
    echo "cluster smoke: cluster sweep records missing" >&2
    exit 1
}
# Every cell churns membership mid-run (a join and a graceful leave);
# the shadow-accounting audit must find no lost or duplicated page.
if grep '"bench":"scaling_cluster"' "$cluster_json_a" | grep -qv '"lost_pages":0'; then
    echo "cluster smoke: pages lost during migration chaos" >&2
    exit 1
fi
if grep '"bench":"scaling_cluster"' "$cluster_json_a" | grep -qv '"duplicated_pages":0'; then
    echo "cluster smoke: pages duplicated during migration chaos" >&2
    exit 1
fi
rm -f "$cluster_out_a" "$cluster_out_b" "$cluster_json_a" "$cluster_json_b"

echo "==> pipeline smoke: depth sweep (twice, stdout + JSON must be byte-identical)"
pipe_out_a="$(mktemp)"
pipe_out_b="$(mktemp)"
pipe_json_a="$(mktemp)"
pipe_json_b="$(mktemp)"
cargo run -q --release -p fluidmem-bench --bin pipeline -- --smoke --json "$pipe_json_a" > "$pipe_out_a"
cargo run -q --release -p fluidmem-bench --bin pipeline -- --smoke --json "$pipe_json_b" > "$pipe_out_b"
test -s "$pipe_json_a" || { echo "pipeline smoke: empty JSON output" >&2; exit 1; }
cmp "$pipe_out_a" "$pipe_out_b" || {
    echo "pipeline smoke: stdout not deterministic" >&2
    exit 1
}
cmp "$pipe_json_a" "$pipe_json_b" || {
    echo "pipeline smoke: JSON output not deterministic" >&2
    exit 1
}
grep -q '"depth":16' "$pipe_json_a" || {
    echo "pipeline smoke: depth sweep incomplete" >&2
    exit 1
}
grep -q '"bench":"pipeline_reclaim"' "$pipe_json_a" || {
    echo "pipeline smoke: background-reclaim sweep records missing" >&2
    exit 1
}
# At default watermarks the background evictor must absorb the entire
# eviction load: any direct (inline, on-fault-path) reclaim is a gate
# failure.
if grep '"bench":"pipeline_reclaim"' "$pipe_json_a" | grep -qv '"direct_reclaims":0'; then
    echo "pipeline smoke: direct reclaims at default watermarks (evictor fell behind)" >&2
    exit 1
fi
# Deep pipelines are where inline eviction hurts: reclaim must win the
# p99 tail at every depth >= 4.
if grep '"bench":"pipeline_reclaim"' "$pipe_json_a" | grep -E '"depth":(4|8|16),' | grep -q '"tail_win":false'; then
    echo "pipeline smoke: background reclaim lost the p99 tail at depth >= 4" >&2
    exit 1
fi
rm -f "$pipe_out_a" "$pipe_out_b" "$pipe_json_a" "$pipe_json_b"

echo "==> workingset smoke: WSS sweep (twice, stdout + JSON must be byte-identical)"
ws_out_a="$(mktemp)"
ws_out_b="$(mktemp)"
ws_json_a="$(mktemp)"
ws_json_b="$(mktemp)"
cargo run -q --release -p fluidmem-bench --bin workingset -- --smoke --json "$ws_json_a" > "$ws_out_a"
cargo run -q --release -p fluidmem-bench --bin workingset -- --smoke --json "$ws_json_b" > "$ws_out_b"
test -s "$ws_json_a" || { echo "workingset smoke: empty JSON output" >&2; exit 1; }
cmp "$ws_out_a" "$ws_out_b" || {
    echo "workingset smoke: stdout not deterministic" >&2
    exit 1
}
cmp "$ws_json_a" "$ws_json_b" || {
    echo "workingset smoke: JSON output not deterministic" >&2
    exit 1
}
grep -q '"bench":"workingset"' "$ws_json_a" || {
    echo "workingset smoke: sweep records missing" >&2
    exit 1
}
rm -f "$ws_out_a" "$ws_out_b" "$ws_json_a" "$ws_json_b"

echo "==> tiering smoke: compressibility sweep (twice, stdout + JSON must be byte-identical)"
tier_out_a="$(mktemp)"
tier_out_b="$(mktemp)"
tier_json_a="$(mktemp)"
tier_json_b="$(mktemp)"
cargo run -q --release -p fluidmem-bench --bin tiering -- --smoke --json "$tier_json_a" > "$tier_out_a"
cargo run -q --release -p fluidmem-bench --bin tiering -- --smoke --json "$tier_json_b" > "$tier_out_b"
test -s "$tier_json_a" || { echo "tiering smoke: empty JSON output" >&2; exit 1; }
cmp "$tier_out_a" "$tier_out_b" || {
    echo "tiering smoke: stdout not deterministic" >&2
    exit 1
}
cmp "$tier_json_a" "$tier_json_b" || {
    echo "tiering smoke: JSON output not deterministic" >&2
    exit 1
}
grep -q '"bench":"tiering"' "$tier_json_a" || {
    echo "tiering smoke: sweep records missing" >&2
    exit 1
}
# Every cell audits the pool against the page tracker: each tracked
# page must be found in exactly one place (DRAM, pool, write list, or
# store), with the compressed-byte accounting balanced.
if grep '"bench":"tiering"' "$tier_json_a" | grep -qv '"lost_pages":0'; then
    echo "tiering smoke: pages lost between the pool and the store" >&2
    exit 1
fi
if grep '"bench":"tiering"' "$tier_json_a" | grep -qv '"duplicated_pages":0'; then
    echo "tiering smoke: pages duplicated between the pool and the store" >&2
    exit 1
fi
rm -f "$tier_out_a" "$tier_out_b" "$tier_json_a" "$tier_json_b"

echo "==> prefetch smoke: phase sweep (twice, byte-identical, strided hit rate, zero fatal errors)"
pf_out_a="$(mktemp)"
pf_out_b="$(mktemp)"
pf_json_a="$(mktemp)"
pf_json_b="$(mktemp)"
cargo run -q --release -p fluidmem-bench --bin prefetch -- --smoke --json "$pf_json_a" > "$pf_out_a"
cargo run -q --release -p fluidmem-bench --bin prefetch -- --smoke --json "$pf_json_b" > "$pf_out_b"
test -s "$pf_json_a" || { echo "prefetch smoke: empty JSON output" >&2; exit 1; }
cmp "$pf_out_a" "$pf_out_b" || {
    echo "prefetch smoke: stdout not deterministic" >&2
    exit 1
}
cmp "$pf_json_a" "$pf_json_b" || {
    echo "prefetch smoke: JSON output not deterministic" >&2
    exit 1
}
grep -q '"bench":"prefetch_gate"' "$pf_json_a" || {
    echo "prefetch smoke: gate record missing" >&2
    exit 1
}
# Speculation must never panic the monitor on a store error.
if grep '"bench":"prefetch_gate"' "$pf_json_a" | grep -qv '"fatal_errors":0'; then
    echo "prefetch smoke: fatal store errors surfaced on the prefetch path" >&2
    exit 1
fi
# The detector must cover at least half the strided phase's accesses on
# the depth-8 pipeline; below that the trend prefetcher is not working.
pf_hit="$(grep '"bench":"prefetch_gate"' "$pf_json_a" \
    | sed 's/.*"strided_hit_rate":\([0-9.eE+-]*\).*/\1/')"
test -n "$pf_hit" || {
    echo "prefetch smoke: strided_hit_rate missing from gate record" >&2
    exit 1
}
awk -v hit="$pf_hit" 'BEGIN { exit (hit >= 0.5) ? 0 : 1 }' || {
    echo "prefetch smoke: strided-phase hit rate ($pf_hit) fell below 0.5" >&2
    exit 1
}
rm -f "$pf_out_a" "$pf_out_b" "$pf_json_a" "$pf_json_b"

echo "==> all checks passed"
