//! Cluster chaos tests: live partition migration under churn and
//! injected store faults. Whatever the membership schedule does — nodes
//! joining mid-run, draining gracefully, or dying by lease expiry while
//! a copier streams pages at them — the shadow-accounting audit must
//! find zero lost and zero duplicated pages, the fault pipeline must
//! never stall on the copier, and the whole run must be a pure function
//! of the seed.

use fluidmem::host::{HostAgent, HostConfig, VmSpec};
use fluidmem::kv::{
    ClusterHandle, ClusterStore, FaultInjectingStore, KeyValueStore, NodeId, RamCloudStore,
    TransportModel,
};
use fluidmem::sim::{FaultPlan, SimClock, SimDuration, SimRng};

const SEEDS: [u64; 4] = [7, 101, 4242, 90210];

/// A store node wrapped in mild fault injection: slow replicas and
/// transient refusals exercise the retry/failover taxonomy without
/// breaking the applied-iff-acknowledged property the shadow accounting
/// relies on (timeouts in this simulator are applied-but-unacknowledged,
/// which retries make idempotent).
fn chaotic_node(seed: u64, id: NodeId, clock: &SimClock) -> Box<dyn KeyValueStore> {
    let inner = RamCloudStore::new(
        1 << 26,
        clock.clone(),
        SimRng::seed_from_u64(seed.wrapping_mul(2027).wrapping_add(u64::from(id))),
    );
    let plan = FaultPlan::new(SimRng::seed_from_u64(seed ^ (0xFA17 + u64::from(id))))
        .with_slow_replica(0.05)
        .with_transient_error(0.04);
    Box::new(FaultInjectingStore::new(
        Box::new(inner),
        plan,
        clock.clone(),
    ))
}

fn clustered_host(seed: u64, nodes: u32) -> HostAgent {
    let clock = SimClock::new();
    let mut cluster = ClusterStore::new(
        clock.clone(),
        SimRng::seed_from_u64(seed ^ 0xC0B1_E500),
        TransportModel::infiniband_verbs(),
        64,
        16,
    );
    for id in 0..nodes {
        cluster.add_node(id, chaotic_node(seed, id, &clock));
    }
    let config = HostConfig::new(192)
        .min_pages(16)
        .rebalance_interval(256)
        .cluster_interval(64);
    let mut host = HostAgent::with_cluster(
        config,
        ClusterHandle::new(cluster),
        SimDuration::from_micros(1_000_000),
        clock,
        SimRng::seed_from_u64(seed + 100),
    );
    host.add_vm(VmSpec::new("a", 96).weight(2));
    host.add_vm(VmSpec::new("b", 96));
    host.add_vm(VmSpec::new("c", 64));
    host
}

/// Ticks until the copier settles; heartbeat RTTs advance the shared
/// clock, so queued batch activations become due.
fn settle(agent: &mut HostAgent) {
    let handle = agent.cluster_handle().unwrap();
    for _ in 0..2_000 {
        agent.cluster_tick_now();
        if handle.with(|c| c.migrations_in_flight()) == 0 {
            return;
        }
    }
    panic!("cluster migrations never settled");
}

/// Every counter a run's cluster behaviour is summarized by.
fn counter_snapshot(agent: &HostAgent) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    agent.cluster_handle().unwrap().with(|c| {
        let k = c.counters();
        (
            k.migrations_started.get(),
            k.migrations_flipped.get(),
            k.migrations_aborted.get(),
            k.migrations_retargeted.get(),
            k.pages_copied.get(),
            k.pages_recopied.get(),
            k.node_joins.get(),
            k.node_leaves.get(),
            k.node_expirations.get(),
        )
    })
}

#[test]
fn live_migration_chaos_loses_no_pages() {
    for seed in SEEDS {
        let mut agent = clustered_host(seed, 2);
        agent.run(2_000);

        // A node joins; partitions start live-migrating toward it while
        // the VMs keep faulting through the ring.
        let clock = agent.clock().clone();
        agent.add_store_node(2, chaotic_node(seed, 2, &clock));
        let handle = agent.cluster_handle().unwrap();

        // The copier lives on a private timeline: driving it directly
        // must not move the shared clock the fault pipeline runs on.
        let before = agent.clock().now();
        handle.with(|c| c.tick(before));
        assert_eq!(
            agent.clock().now(),
            before,
            "seed {seed}: the copier stalled the fault pipeline's clock"
        );

        agent.run(2_000);
        // The first node leaves gracefully mid-run.
        agent.remove_store_node(0);
        agent.run(2_000);
        agent.drain();
        settle(&mut agent);

        let report = agent.audit_cluster().unwrap();
        assert!(report.checked > 0, "seed {seed}: audit covered nothing");
        assert!(
            report.is_clean(),
            "seed {seed}: {} lost, {} duplicated of {} pages",
            report.missing.len(),
            report.duplicated.len(),
            report.checked
        );
        assert!(
            handle.with(|c| c.counters().migrations_flipped.get()) > 0,
            "seed {seed}: churn must actually migrate partitions"
        );
        assert!(
            handle.with(|c| c.partitions_of(0).is_empty()),
            "seed {seed}: the leaver must drain fully"
        );
    }
}

#[test]
fn chaos_runs_are_byte_identical() {
    for seed in SEEDS {
        let build = || {
            let mut agent = clustered_host(seed, 2);
            agent.run(1_500);
            let clock = agent.clock().clone();
            agent.add_store_node(2, chaotic_node(seed, 2, &clock));
            agent.run(1_500);
            agent.remove_store_node(0);
            agent.run(1_500);
            agent.drain();
            settle(&mut agent);
            agent
        };
        let a = build();
        let b = build();
        assert_eq!(
            a.clock().now(),
            b.clock().now(),
            "seed {seed}: virtual time diverged"
        );
        assert_eq!(
            a.store_stats(),
            b.store_stats(),
            "seed {seed}: store stats diverged"
        );
        assert_eq!(
            counter_snapshot(&a),
            counter_snapshot(&b),
            "seed {seed}: cluster counters diverged"
        );
        for i in 0..3 {
            assert_eq!(
                a.vm_signals(i),
                b.vm_signals(i),
                "seed {seed}: vm{i} signals diverged"
            );
        }
        assert_eq!(
            a.telemetry().export_prometheus(),
            b.telemetry().export_prometheus(),
            "seed {seed}: telemetry diverged"
        );
    }
}

#[test]
fn lease_expiry_mid_migration_retargets_deterministically() {
    // The membership-under-churn contract: a lease expiring mid-migration
    // surfaces as a `Deleted` watch event — an ordered, replayable entry
    // in the coordination service's total order — and the handler aborts
    // the copies streaming at the dead node at the same virtual instant
    // every run, with no page lost.
    for seed in SEEDS {
        let build = || {
            let mut agent = clustered_host(seed, 3);
            agent.run(2_000);
            let clock = agent.clock().clone();
            agent.add_store_node(3, chaotic_node(seed, 3, &clock));
            let handle = agent.cluster_handle().unwrap();
            let streaming = handle.with(|c| c.migrations_in_flight());
            // The joiner dies (silently — its heartbeats just stop)
            // while the copier streams at it.
            agent.expire_store_node(3);
            agent.run(2_000);
            agent.drain();
            settle(&mut agent);
            (agent, streaming)
        };
        let (a, streaming_a) = build();
        let (b, streaming_b) = build();

        let handle = a.cluster_handle().unwrap();
        let (.., expirations) = counter_snapshot(&a);
        assert_eq!(expirations, 1, "seed {seed}: expiry must be counted once");
        assert!(!handle.with(|c| c.is_alive(3)), "seed {seed}");
        if streaming_a > 0 {
            assert!(
                handle.with(|c| c.counters().migrations_aborted.get()) > 0,
                "seed {seed}: in-flight copies at the dead node must abort"
            );
        }
        let report = a.audit_cluster().unwrap();
        assert!(
            report.is_clean(),
            "seed {seed}: {} lost, {} duplicated",
            report.missing.len(),
            report.duplicated.len()
        );

        assert_eq!(streaming_a, streaming_b, "seed {seed}");
        assert_eq!(a.clock().now(), b.clock().now(), "seed {seed}");
        assert_eq!(a.store_stats(), b.store_stats(), "seed {seed}");
        assert_eq!(counter_snapshot(&a), counter_snapshot(&b), "seed {seed}");
    }
}
