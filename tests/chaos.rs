//! Chaos tests: the full remote-memory path under injected transport
//! faults. Whatever the fault schedule does — drops, timeouts, slow
//! replicas, transient refusals — no write may be lost, every read must
//! return the last-written value, the write list must drain, and retry
//! counts must stay bounded.

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig, Optimizations};
use fluidmem::kv::{
    FaultInjectingStore, KeyValueStore, RamCloudStore, ReplicatedStore, SharedStore,
};
use fluidmem::mem::{MemoryBackend, PageClass, PageContents};
use fluidmem::sim::{FaultPlan, SimClock, SimRng};

const SEEDS: [u64; 4] = [7, 101, 4242, 90210];

/// Drop + timeout + slow-replica + transient-refusal mix: roughly a
/// quarter of store operations misbehave.
fn chaotic_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(SimRng::seed_from_u64(seed ^ 0xFA_17))
        .with_drop(0.08)
        .with_timeout(0.06)
        .with_slow_replica(0.08)
        .with_transient_error(0.06)
}

fn chaotic_backend(capacity: u64, seed: u64) -> FluidMemMemory {
    let clock = SimClock::new();
    let inner = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed));
    let store = FaultInjectingStore::new(Box::new(inner), chaotic_plan(seed), clock.clone());
    FluidMemMemory::new(
        MonitorConfig::new(capacity).optimizations(Optimizations::full()),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed + 1),
    )
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u64, u64),
    Read(u64),
    Touch(u64),
}

fn gen_ops(rng: &mut SimRng, pages: u64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| match rng.gen_index(3) {
            0 => Op::Write(rng.gen_index(pages), rng.gen_index(1_000_000)),
            1 => Op::Read(rng.gen_index(pages)),
            _ => Op::Touch(rng.gen_index(pages)),
        })
        .collect()
}

/// Runs an op sequence against a backend and a plain-map model,
/// asserting every read sees the last write.
fn run_against_model(backend: &mut FluidMemMemory, pages: u64, ops: &[Op]) {
    let region = backend.map_region(pages, PageClass::Anonymous);
    // BTreeMap, not HashMap: the final sweep iterates the model, and a
    // hash map's per-instance order would make replays diverge.
    let mut model: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for op in ops {
        match op {
            Op::Write(p, v) => {
                backend.write_page(region.page(*p), PageContents::Token(*v));
                model.insert(*p, *v);
            }
            Op::Read(p) => {
                let (contents, _) = backend.read_page(region.page(*p));
                match model.get(p) {
                    Some(v) => assert_eq!(
                        contents,
                        PageContents::Token(*v),
                        "page {p} lost or corrupted under faults"
                    ),
                    None => assert!(
                        matches!(contents, PageContents::Zero),
                        "unwritten page {p} must read zero, got {contents:?}"
                    ),
                }
            }
            Op::Touch(p) => {
                backend.access(region.page(*p), false);
            }
        }
    }
    // Final sweep: everything written is still there.
    for (p, v) in &model {
        let (contents, _) = backend.read_page(region.page(*p));
        assert_eq!(contents, PageContents::Token(*v), "page {p} lost in sweep");
    }
}

/// The headline chaos test: random traffic over a faulty transport, for
/// several seeds, with integrity, drain, and bounded-retry assertions.
#[test]
fn no_data_loss_under_chaotic_transport() {
    let mut any_faults = 0u64;
    let mut any_retries = 0u64;
    for &seed in &SEEDS {
        let mut rng = SimRng::seed_from_u64(seed);
        let ops = gen_ops(&mut rng, 96, 600);
        let mut backend = chaotic_backend(16, seed);
        run_against_model(&mut backend, 96, &ops);

        // The write list always drains, even over a faulty transport.
        backend.drain_writes();
        assert_eq!(
            backend.monitor().pending_writes(),
            0,
            "seed {seed}: write list must drain"
        );

        let stats = backend.monitor().stats();
        let store = backend.monitor().store().stats();
        assert_eq!(stats.lost_pages, 0, "seed {seed}: faults are not data loss");
        // Bounded recovery effort: retries can't exceed the attempt
        // budget for every read plus every flush ever issued.
        let policy = backend.monitor().config().retry;
        let ceiling =
            (stats.remote_reads + stats.flushes + stats.evictions) * u64::from(policy.max_attempts);
        assert!(
            stats.read_retries + stats.write_retries <= ceiling,
            "seed {seed}: retry counts unbounded: {stats:?}"
        );
        any_faults += store.faults_injected;
        any_retries += stats.read_retries + stats.write_retries + stats.flush_failures;
    }
    assert!(any_faults > 0, "the fault plan must actually fire");
    assert!(
        any_retries > 0,
        "a ~28% fault rate must exercise the retry machinery"
    );
}

/// Deterministic replay: the same seed produces the identical virtual
/// timeline and counters.
#[test]
fn chaos_runs_are_deterministic() {
    let run = |seed: u64| {
        let mut rng = SimRng::seed_from_u64(seed);
        let ops = gen_ops(&mut rng, 64, 400);
        let mut backend = chaotic_backend(12, seed);
        run_against_model(&mut backend, 64, &ops);
        backend.drain_writes();
        let stats = backend.monitor().stats();
        let store = backend.monitor().store().stats();
        (backend.clock().now(), stats, store)
    };
    for &seed in &SEEDS[..3] {
        assert_eq!(run(seed), run(seed), "seed {seed} must replay identically");
    }
}

/// Faults make individual faults slower but never unbounded: the whole
/// run completes and the clock only moves forward.
#[test]
fn chaotic_clock_stays_monotone() {
    for &seed in &SEEDS[..3] {
        let mut rng = SimRng::seed_from_u64(seed);
        let ops = gen_ops(&mut rng, 48, 300);
        let mut backend = chaotic_backend(8, seed);
        let region = backend.map_region(48, PageClass::Anonymous);
        let mut last = backend.clock().now();
        for op in ops {
            match op {
                Op::Write(p, v) => {
                    backend.write_page(region.page(p), PageContents::Token(v));
                }
                Op::Read(p) | Op::Touch(p) => {
                    backend.access(region.page(p), false);
                }
            }
            let now = backend.clock().now();
            assert!(now >= last, "seed {seed}: clock went backwards");
            last = now;
        }
    }
}

/// Per-VM monitor counters captured at the end of a multi-VM run:
/// (faults, remote reads, evictions, read retries).
type VmCounters = (u64, u64, u64, u64);

/// Drives three VMs over handles to *one* fault-injecting store, each
/// keyed under its own partition, with per-VM last-write models.
/// Asserts no VM ever reads another VM's value space, and returns a
/// run fingerprint (per-VM counters, store puts, store gets) for
/// replay comparison.
fn multi_vm_fingerprint(seed: u64) -> (Vec<VmCounters>, u64, u64) {
    const VMS: usize = 3;
    const PAGES: u64 = 48;
    let clock = SimClock::new();
    let inner = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed));
    let shared = SharedStore::new(Box::new(FaultInjectingStore::new(
        Box::new(inner),
        chaotic_plan(seed),
        clock.clone(),
    )));
    let mut vms: Vec<FluidMemMemory> = (0..VMS)
        .map(|v| {
            FluidMemMemory::new(
                MonitorConfig::new(8).optimizations(Optimizations::full()),
                Box::new(shared.handle()),
                PartitionId::new(v as u16 + 1),
                clock.clone(),
                SimRng::seed_from_u64(seed * 10 + v as u64),
            )
        })
        .collect();
    let regions: Vec<_> = vms
        .iter_mut()
        .map(|vm| vm.map_region(PAGES, PageClass::Anonymous))
        .collect();
    // Each VM writes tokens in its own value band: (v+1) million plus a
    // page- and version-specific residue. Reading a token outside your
    // band means the shared store leaked another tenant's page.
    let band = |v: usize| (v as u64 + 1) * 1_000_000;
    let mut models: Vec<std::collections::BTreeMap<u64, u64>> =
        vec![std::collections::BTreeMap::new(); VMS];
    let mut rng = SimRng::seed_from_u64(seed ^ 0xD15A);
    for _ in 0..900 {
        let v = rng.gen_index(VMS as u64) as usize;
        let p = rng.gen_index(PAGES);
        match rng.gen_index(3) {
            0 => {
                let val = band(v) + p * 1_000 + rng.gen_index(1_000);
                vms[v].write_page(regions[v].page(p), PageContents::Token(val));
                models[v].insert(p, val);
            }
            1 => {
                let (contents, _) = vms[v].read_page(regions[v].page(p));
                if let PageContents::Token(t) = contents {
                    assert_eq!(
                        t / 1_000_000,
                        v as u64 + 1,
                        "seed {seed}: vm{v} read a token from band {}",
                        t / 1_000_000
                    );
                }
                match models[v].get(&p) {
                    Some(val) => assert_eq!(
                        contents,
                        PageContents::Token(*val),
                        "seed {seed}: vm{v} page {p} lost or stale under faults"
                    ),
                    None => assert!(
                        matches!(contents, PageContents::Zero),
                        "seed {seed}: vm{v} unwritten page {p} must read zero, got {contents:?}"
                    ),
                }
            }
            _ => {
                vms[v].access(regions[v].page(p), false);
            }
        }
    }
    // Final sweep and drain: every VM's data intact, nothing lost.
    for v in 0..VMS {
        for (p, val) in &models[v] {
            let (contents, _) = vms[v].read_page(regions[v].page(*p));
            assert_eq!(
                contents,
                PageContents::Token(*val),
                "seed {seed}: vm{v} page {p} lost in sweep"
            );
        }
        vms[v].drain_writes();
        assert_eq!(vms[v].monitor().pending_writes(), 0);
        assert_eq!(vms[v].monitor().stats().lost_pages, 0);
    }
    let per_vm = vms
        .iter()
        .map(|vm| {
            let s = vm.monitor().stats();
            (s.faults, s.remote_reads, s.evictions, s.read_retries)
        })
        .collect();
    let store = shared.stats();
    (per_vm, store.puts, store.gets)
}

/// Multi-VM chaos: N monitors on one fault-injecting shared store stay
/// isolated by partition and replay bit-identically for every seed.
#[test]
fn multi_vm_chaos_is_isolated_and_deterministic() {
    for &seed in &SEEDS {
        let first = multi_vm_fingerprint(seed);
        assert!(
            first.0.iter().any(|&(faults, ..)| faults > 0),
            "seed {seed}: the fleet must actually fault"
        );
        assert_eq!(
            first,
            multi_vm_fingerprint(seed),
            "seed {seed}: multi-VM chaos must replay identically"
        );
    }
}

/// Shadow-entry accounting under chaos: evictions whose store writes
/// fail and retry (or whose flushed batches are requeued) must neither
/// leak nor double-count nonresident entries. Every recorded eviction
/// is exactly one of: still shadowed, consumed by a measured refault,
/// dropped on table overflow, or explicitly forgotten — and the shadow
/// table never tracks a page that is actually resident.
#[test]
fn shadow_accounting_survives_chaotic_retries() {
    use fluidmem::core::{PrefetchPolicy, WorkingSetConfig};

    // Sync writes (retries inline on the eviction path), async writes
    // (flush failures requeue whole batches), and async + prefetch
    // (pages return without a fault and must be forgotten). A tiny
    // shadow bound forces overflow drops on top of the retry traffic.
    let variants: [(&str, Optimizations, PrefetchPolicy, usize); 3] = [
        ("sync", Optimizations::none(), PrefetchPolicy::None, 1 << 16),
        ("async", Optimizations::full(), PrefetchPolicy::None, 24),
        (
            "async+prefetch",
            Optimizations::full(),
            PrefetchPolicy::Sequential { window: 2 },
            1 << 16,
        ),
    ];
    let mut any_refaults = 0u64;
    for &seed in &SEEDS {
        for (label, opts, prefetch, shadow_capacity) in &variants {
            let clock = SimClock::new();
            let inner = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed));
            let store =
                FaultInjectingStore::new(Box::new(inner), chaotic_plan(seed), clock.clone());
            let mut backend = FluidMemMemory::new(
                MonitorConfig::new(16)
                    .optimizations(*opts)
                    .prefetch(*prefetch)
                    .workingset(WorkingSetConfig::default().shadow_capacity(*shadow_capacity)),
                Box::new(store),
                PartitionId::new(0),
                clock,
                SimRng::seed_from_u64(seed + 1),
            );
            let mut rng = SimRng::seed_from_u64(seed ^ 0x5EED);
            let ops = gen_ops(&mut rng, 96, 600);
            run_against_model(&mut backend, 96, &ops);
            backend.drain_writes();

            let stats = backend.monitor().stats();
            let ws = backend.monitor().workingset();
            assert!(
                ws.accounting_balances(),
                "seed {seed} ({label}): {} evictions != {} shadowed + {} refaulted \
                 + {} overflowed + {} forgotten",
                ws.evictions_recorded(),
                ws.shadow_len(),
                ws.refaults_measured(),
                ws.overflow_drops(),
                ws.forgotten()
            );
            assert_eq!(
                ws.evictions_recorded(),
                stats.evictions,
                "seed {seed} ({label}): every eviction leaves exactly one shadow entry"
            );
            assert!(
                ws.shadow_len() <= *shadow_capacity,
                "seed {seed} ({label}): shadow table over its bound"
            );
            for vpn in ws.shadow_pages() {
                assert!(
                    !backend.monitor().is_resident(vpn),
                    "seed {seed} ({label}): {vpn} is resident yet still shadowed"
                );
            }
            if *shadow_capacity < 1 << 16 {
                assert!(
                    ws.overflow_drops() > 0,
                    "seed {seed} ({label}): the tiny table must overflow"
                );
            }
            any_refaults += ws.refaults_measured();
        }
    }
    assert!(
        any_refaults > 0,
        "a 16-page buffer over 96 hot pages must measure refaults"
    );
}

/// A replicated store whose primary suffers chaos: reads fail over to
/// the healthy mirror and nothing is lost.
#[test]
fn replicated_store_fails_over_without_data_loss() {
    for &seed in &SEEDS[..3] {
        let clock = SimClock::new();
        let primary_inner = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed));
        let primary = FaultInjectingStore::new(
            Box::new(primary_inner),
            FaultPlan::new(SimRng::seed_from_u64(seed ^ 0xBEEF))
                .with_drop(0.15)
                .with_timeout(0.10)
                .with_slow_replica(0.10),
            clock.clone(),
        );
        let mirror = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed + 1));
        let replicated = ReplicatedStore::new(vec![Box::new(primary), Box::new(mirror)]);

        let mut backend = FluidMemMemory::new(
            MonitorConfig::new(12).optimizations(Optimizations::full()),
            Box::new(replicated),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(seed + 2),
        );
        let mut rng = SimRng::seed_from_u64(seed + 3);
        let ops = gen_ops(&mut rng, 64, 400);
        run_against_model(&mut backend, 64, &ops);
        backend.drain_writes();

        let stats = backend.monitor().stats();
        let store = backend.monitor().store().stats();
        assert_eq!(
            stats.lost_pages, 0,
            "seed {seed}: replication must mask faults"
        );
        assert!(
            store.failovers > 0,
            "seed {seed}: a 35% primary fault rate must cause failovers"
        );
    }
}
