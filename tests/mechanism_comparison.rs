//! Shape invariants from the paper's evaluation, checked at miniature
//! scale: who wins, in which regime, must match §VI.

use fluidmem::sim::{SimDuration, SimRng};
use fluidmem::testbed::{BackendKind, Testbed};
use fluidmem::workloads::pmbench::{self, PmbenchConfig};

fn pmbench_avg(kind: BackendKind, seed: u64) -> f64 {
    let testbed = Testbed::scaled_down(512);
    let mut backend = testbed.build(kind, seed);
    let config = PmbenchConfig {
        wss_pages: testbed.local_dram_pages * 4,
        duration: SimDuration::from_millis(400),
        read_ratio: 0.5,
        max_accesses: 40_000,
    };
    let mut rng = SimRng::seed_from_u64(seed);
    pmbench::run(backend.as_mut(), &config, &mut rng).avg_latency_us()
}

/// Figure 3's headline: FluidMem/RAMCloud beats swap/NVMeoF by tens of
/// percent and SSD swap by a large factor.
#[test]
fn fluidmem_ramcloud_beats_swap_nvmeof_and_ssd() {
    let rc = pmbench_avg(BackendKind::FluidMemRamCloud, 7);
    let nv = pmbench_avg(BackendKind::SwapNvmeof, 7);
    let ssd = pmbench_avg(BackendKind::SwapSsd, 7);
    assert!(
        rc < nv * 0.8,
        "FluidMem/RAMCloud ({rc:.1}µs) should be ≥20% faster than swap/NVMeoF ({nv:.1}µs)"
    );
    assert!(
        rc < ssd * 0.4,
        "FluidMem/RAMCloud ({rc:.1}µs) should be ≥60% faster than swap/SSD ({ssd:.1}µs)"
    );
}

/// Figure 3's backend ordering within each mechanism.
#[test]
fn backend_ordering_matches_figure3() {
    let fm_dram = pmbench_avg(BackendKind::FluidMemDram, 8);
    let fm_rc = pmbench_avg(BackendKind::FluidMemRamCloud, 8);
    let fm_mc = pmbench_avg(BackendKind::FluidMemMemcached, 8);
    assert!(
        fm_dram <= fm_rc && fm_rc < fm_mc,
        "{fm_dram} {fm_rc} {fm_mc}"
    );

    let sw_dram = pmbench_avg(BackendKind::SwapDram, 8);
    let sw_nv = pmbench_avg(BackendKind::SwapNvmeof, 8);
    let sw_ssd = pmbench_avg(BackendKind::SwapSsd, 8);
    assert!(
        sw_dram < sw_nv && sw_nv < sw_ssd,
        "{sw_dram} {sw_nv} {sw_ssd}"
    );
}

/// §VI-B: with a 4x overcommitted working set, "slightly over 25%" of
/// accesses are DRAM-local.
#[test]
fn dram_hit_fraction_tracks_overcommit_ratio() {
    let testbed = Testbed::scaled_down(512);
    let mut backend = testbed.build(BackendKind::FluidMemRamCloud, 9);
    let config = PmbenchConfig {
        wss_pages: testbed.local_dram_pages * 4,
        duration: SimDuration::from_millis(300),
        read_ratio: 0.5,
        max_accesses: 30_000,
    };
    let mut rng = SimRng::seed_from_u64(9);
    let report = pmbench::run(backend.as_mut(), &config, &mut rng);
    assert!(
        (report.hit_fraction() - 0.25).abs() < 0.05,
        "hit fraction {} should be ~25%",
        report.hit_fraction()
    );
}

/// §II: only FluidMem lets the operator resize the local footprint.
#[test]
fn only_fluidmem_resizes_without_guest_help() {
    let testbed = Testbed::scaled_down(512);
    for kind in BackendKind::ALL {
        let mut backend = testbed.build(kind, 1);
        let result = backend.set_local_capacity(64);
        assert_eq!(
            result.is_ok(),
            kind.is_fluidmem(),
            "{} resize result wrong",
            kind.label()
        );
    }
}

/// The monitor's fault-latency CDF has the flat hit region the paper
/// describes: everything under 10µs is a DRAM hit, everything else a
/// remote fault.
#[test]
fn fluidmem_cdf_has_bimodal_shape() {
    let testbed = Testbed::scaled_down(512);
    let mut backend = testbed.build(BackendKind::FluidMemRamCloud, 10);
    let config = PmbenchConfig {
        wss_pages: testbed.local_dram_pages * 4,
        duration: SimDuration::from_millis(300),
        read_ratio: 0.5,
        max_accesses: 30_000,
    };
    let mut rng = SimRng::seed_from_u64(10);
    let report = pmbench::run(backend.as_mut(), &config, &mut rng);
    let below_10us = report.all.fraction_below(SimDuration::from_micros(10));
    let below_20us = report.all.fraction_below(SimDuration::from_micros(20));
    // The hit plateau: ~25% below 10µs, and nothing lands between 10 and
    // 20µs except the leading edge of remote faults.
    assert!((below_10us - 0.25).abs() < 0.05, "hits {below_10us}");
    assert!(below_20us < 0.45, "the remote mode must sit above ~20µs");
}

/// Deterministic reproducibility: identical seeds yield identical
/// experiments, across every backend kind.
#[test]
fn same_seed_same_results() {
    for kind in BackendKind::ALL {
        let a = pmbench_avg(kind, 33);
        let b = pmbench_avg(kind, 33);
        assert_eq!(a, b, "{} must be deterministic", kind.label());
    }
}

/// Different seeds perturb results (the simulation is not degenerate).
#[test]
fn different_seeds_differ() {
    let a = pmbench_avg(BackendKind::FluidMemRamCloud, 1);
    let b = pmbench_avg(BackendKind::FluidMemRamCloud, 2);
    assert_ne!(a, b);
}
