//! Telemetry acceptance tests: exports are deterministic, stats views
//! agree with the registry, and the exported trace shows the §V-B
//! overlap — the async KV read's flight running concurrently with
//! `UFFD_REMAP` on the monitor track.

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig};
use fluidmem::kv::RamCloudStore;
use fluidmem::sim::{SimClock, SimDuration, SimRng};
use fluidmem::telemetry::{consts, validate_chrome_trace, SpanRecord, Telemetry};
use fluidmem::workloads::pmbench::{self, PmbenchConfig};

/// Builds a traced FluidMem VM, runs a short pmbench, and returns the
/// telemetry handle it recorded into.
fn traced_run(seed: u64) -> (Telemetry, FluidMemMemory) {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(seed ^ 0x4B56));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(64),
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(seed),
    );
    let telemetry = Telemetry::new(clock);
    telemetry.enable_spans();
    vm.attach_telemetry(&telemetry);
    let config = PmbenchConfig {
        wss_pages: 256,
        duration: SimDuration::from_secs(1),
        read_ratio: 0.5,
        max_accesses: 1_500,
    };
    let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(3));
    pmbench::run(&mut vm, &config, &mut rng);
    vm.drain_writes();
    (telemetry, vm)
}

#[test]
fn exports_are_deterministic_across_runs() {
    let (a, _vm_a) = traced_run(42);
    let (b, _vm_b) = traced_run(42);
    assert_eq!(
        a.export_chrome_trace(),
        b.export_chrome_trace(),
        "same seed must give a byte-identical Chrome trace"
    );
    assert_eq!(
        a.export_prometheus(),
        b.export_prometheus(),
        "same seed must give a byte-identical Prometheus export"
    );
    assert_eq!(a.export_jsonl(), b.export_jsonl());
}

#[test]
fn chrome_trace_validates_and_shows_async_overlap() {
    let (telemetry, _vm) = traced_run(7);
    let json = telemetry.export_chrome_trace();
    let events = validate_chrome_trace(&json).expect("export must be valid Chrome trace JSON");
    assert!(events > 0, "trace must contain events");

    let records = telemetry.spans().records();
    let flights: Vec<&SpanRecord> = records
        .iter()
        .filter(|r| r.track == consts::TRACK_KV && r.name == "kv.read.flight")
        .collect();
    let remaps: Vec<&SpanRecord> = records
        .iter()
        .filter(|r| r.track == consts::TRACK_MONITOR && r.name == "UFFD_REMAP")
        .collect();
    assert!(!flights.is_empty(), "async reads must record flight spans");
    assert!(!remaps.is_empty(), "Remap eviction must record UFFD_REMAP");
    let overlapping = flights
        .iter()
        .any(|f| remaps.iter().any(|r| f.start < r.end && r.start < f.end));
    assert!(
        overlapping,
        "§V-B: some KV read flight must overlap a UFFD_REMAP span"
    );
}

#[test]
fn stats_views_match_registry_counters() {
    let (telemetry, vm) = traced_run(11);
    let registry = telemetry.registry();
    let stats = vm.monitor().stats();
    let remote_reads = registry
        .counter(
            consts::MONITOR_EVENTS,
            &[(consts::LABEL_EVENT, "remote_read")],
        )
        .get();
    assert_eq!(
        stats.remote_reads, remote_reads,
        "MonitorStats must be a registry view"
    );

    let store_stats = vm.monitor().store().stats();
    let gets = registry
        .counter(
            consts::STORE_OPS,
            &[(consts::LABEL_STORE, "ramcloud"), (consts::LABEL_OP, "get")],
        )
        .get();
    assert_eq!(store_stats.gets, gets, "StoreStats must be a registry view");
    assert!(store_stats.gets > 0, "the run must actually hit the store");
}

#[test]
fn fault_latency_histograms_populate_by_resolution() {
    let (telemetry, _vm) = traced_run(23);
    let hist = telemetry.registry().histogram(
        consts::FAULT_LATENCY_US,
        &[(consts::LABEL_RESOLUTION, "remote_read")],
    );
    let snap = hist.snapshot();
    assert!(
        snap.count > 0,
        "an over-capacity working set must produce remote reads"
    );
}
