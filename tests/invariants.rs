//! Randomized invariant tests over the two memory mechanisms: whatever
//! sequence of operations runs, data must be intact, budgets must hold,
//! and page-class rules must never be violated.

use fluidmem::block::{PmemDevice, SsdDevice};
use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig, Optimizations};
use fluidmem::kv::RamCloudStore;
use fluidmem::mem::{MemoryBackend, PageClass, PageContents};
use fluidmem::sim::{prop, SimClock, SimRng};
use fluidmem::swap::{SwapBackedMemory, SwapConfig};

#[derive(Debug, Clone)]
enum Op {
    Write(u64, u64),
    Read(u64),
    Touch(u64),
}

fn gen_ops(rng: &mut SimRng, pages: u64, min_len: usize, max_len: usize) -> Vec<Op> {
    prop::vec_of(rng, min_len, max_len, |r| match r.gen_index(3) {
        0 => Op::Write(r.gen_index(pages), r.gen_index(1_000_000)),
        1 => Op::Read(r.gen_index(pages)),
        _ => Op::Touch(r.gen_index(pages)),
    })
}

fn fluidmem_backend(capacity: u64, seed: u64) -> FluidMemMemory {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed));
    FluidMemMemory::new(
        MonitorConfig::new(capacity).optimizations(Optimizations::full()),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed + 1),
    )
}

fn swap_backend(dram: u64, seed: u64) -> SwapBackedMemory {
    let clock = SimClock::new();
    let swap_dev = PmemDevice::new(1 << 15, clock.clone(), SimRng::seed_from_u64(seed));
    let fs_dev = SsdDevice::new(1 << 15, clock.clone(), SimRng::seed_from_u64(seed + 1));
    SwapBackedMemory::new(
        SwapConfig::paper_default(dram),
        Box::new(swap_dev),
        Box::new(fs_dev),
        clock,
        SimRng::seed_from_u64(seed + 2),
    )
}

/// Runs an op sequence against a backend and a plain-map model; every
/// read must agree, and the residency bound must hold throughout.
fn check_against_model(backend: &mut dyn MemoryBackend, budget: u64, pages: u64, ops: &[Op]) {
    let region = backend.map_region(pages, PageClass::Anonymous);
    let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for op in ops {
        match op {
            Op::Write(p, v) => {
                backend.write_page(region.page(*p), PageContents::Token(*v));
                model.insert(*p, *v);
            }
            Op::Read(p) => {
                let (contents, _) = backend.read_page(region.page(*p));
                match model.get(p) {
                    Some(v) => {
                        assert_eq!(contents, PageContents::Token(*v), "page {p} corrupted")
                    }
                    None => assert!(
                        matches!(contents, PageContents::Zero),
                        "unwritten page {p} must read zero, got {contents:?}"
                    ),
                }
            }
            Op::Touch(p) => {
                backend.access(region.page(*p), false);
            }
        }
        assert!(
            backend.resident_pages() <= budget + 1,
            "residency {} exceeded budget {}",
            backend.resident_pages(),
            budget
        );
    }
}

/// FluidMem under arbitrary traffic: no corruption, budget enforced.
#[test]
fn fluidmem_integrity_under_random_ops() {
    prop::forall("fluidmem-integrity", 24, |rng| {
        let ops = gen_ops(rng, 96, 1, 250);
        let seed = rng.gen_index(1000);
        let mut backend = fluidmem_backend(16, seed);
        check_against_model(&mut backend, 16, 96, &ops);
    });
}

/// The swap baseline under the same traffic: same guarantees (its DRAM
/// bound is physical).
#[test]
fn swap_integrity_under_random_ops() {
    prop::forall("swap-integrity", 24, |rng| {
        let ops = gen_ops(rng, 96, 1, 250);
        let seed = rng.gen_index(1000);
        let mut backend = swap_backend(32, seed);
        check_against_model(&mut backend, 32, 96, &ops);
    });
}

/// Interleaved resizes never corrupt data or break the bound.
#[test]
fn fluidmem_resize_storm_keeps_integrity() {
    prop::forall("fluidmem-resize-storm", 24, |rng| {
        let caps = prop::vec_of(rng, 1, 11, |r| r.gen_range(1, 64));
        let seed = rng.gen_index(1000);
        let mut backend = fluidmem_backend(64, seed);
        let region = backend.map_region(64, PageClass::Anonymous);
        for i in 0..64 {
            backend.write_page(region.page(i), PageContents::Token(900 + i));
        }
        for cap in &caps {
            backend.set_local_capacity(*cap).unwrap();
            assert!(backend.resident_pages() <= *cap);
            // Spot-check a few pages after each resize.
            for p in [0u64, 31, 63] {
                let (contents, _) = backend.read_page(region.page(p));
                assert_eq!(contents, PageContents::Token(900 + p));
            }
        }
    });
}

/// Virtual time is monotone: no operation may rewind the clock.
#[test]
fn clock_monotonicity() {
    prop::forall("clock-monotonicity", 24, |rng| {
        let ops = gen_ops(rng, 48, 1, 120);
        let mut backend = fluidmem_backend(8, 7);
        let region = backend.map_region(48, PageClass::Anonymous);
        let mut last = backend.clock().now();
        for op in ops {
            match op {
                Op::Write(p, v) => {
                    backend.write_page(region.page(p), PageContents::Token(v));
                }
                Op::Read(p) | Op::Touch(p) => {
                    backend.access(region.page(p), false);
                }
            }
            let now = backend.clock().now();
            assert!(now >= last, "clock went backwards");
            last = now;
        }
    });
}

/// The swap backend's page-class rules hold under pressure: kernel pages
/// pinned, file pages never on the swap device (plain test with heavy
/// deterministic churn).
#[test]
fn swap_class_rules_under_churn() {
    let mut backend = swap_backend(48, 99);
    let kernel = backend.map_region(16, PageClass::KernelData);
    let file = backend.map_region(64, PageClass::FileBacked);
    let anon = backend.map_region(128, PageClass::Anonymous);
    for round in 0..3 {
        for i in 0..16 {
            backend.access(kernel.page(i), true);
        }
        for i in 0..64 {
            backend.access(file.page(i), round == 0);
        }
        for i in 0..128 {
            backend.access(anon.page(i), true);
        }
    }
    // Kernel pages are always hits after first touch.
    for i in 0..16 {
        assert_eq!(
            backend.access(kernel.page(i), false).outcome,
            fluidmem::mem::AccessOutcome::Hit,
            "kernel page {i} was reclaimed"
        );
    }
    let stats = backend.swap_stats();
    assert!(stats.swap_outs > 0, "anonymous churn must swap");
    assert!(stats.fs_reads > 0, "file pages must refault from the fs");
}
