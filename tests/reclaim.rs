//! Acceptance tests for watermark-driven background reclaim.
//!
//! Three properties anchor the feature:
//!
//! * **Default-off identity** — with reclaim disabled (the default) the
//!   monitor must be byte-identical to one that never heard of the
//!   feature: same stats, virtual clock, Prometheus text, and Chrome
//!   trace across seeds, with zero reclaim counters and no reclaim
//!   spans.
//! * **Depth-1 equivalence holds with reclaim ON** — the background
//!   evictor rides the completion event queue, but at depth 1 nothing
//!   is ever in flight when it wakes, so the pipelined path must stay
//!   byte-identical to the call-return path even with reclaim enabled.
//! * **Chaos safety** — with reclaim enabled over a faulty store
//!   transport (drops, timeouts, transient errors, including
//!   multi-write flush failures), no page may be lost or double-freed:
//!   every read returns the last-written contents, the shadow-table
//!   accounting balances, and the write list drains.

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig, Optimizations, PipelineSubmit, ReclaimConfig};
use fluidmem::kv::{FaultInjectingStore, RamCloudStore};
use fluidmem::mem::{AccessOutcome, MemoryBackend, PageClass, PageContents};
use fluidmem::sim::{FaultPlan, SimClock, SimInstant, SimRng};
use fluidmem::telemetry::Telemetry;
use fluidmem::vm::VcpuSet;

const SEEDS: [u64; 4] = [3, 17, 271, 65_537];

/// The guest pid `FluidMemMemory::do_access` raises faults from; the
/// pipelined run must use the same identity for byte-identical traces.
const BACKEND_PID: u64 = 4242;

fn traced_vm(seed: u64, reclaim: Option<ReclaimConfig>) -> (Telemetry, FluidMemMemory) {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(seed ^ 0x4B56));
    let mut config = MonitorConfig::new(48).optimizations(Optimizations::full());
    if let Some(cfg) = reclaim {
        config = config.reclaim(cfg);
    }
    let mut vm = FluidMemMemory::new(
        config,
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(seed),
    );
    let telemetry = Telemetry::new(clock);
    telemetry.enable_spans();
    vm.attach_telemetry(&telemetry);
    (telemetry, vm)
}

/// A working set ~4x the LRU capacity, so the run keeps the buffer full
/// and the evictor busy: first touches, refaults, steals, evictions.
fn schedule(seed: u64) -> Vec<(u64, bool)> {
    let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    (0..600)
        .map(|_| (rng.gen_index(192), rng.gen_bool(0.4)))
        .collect()
}

type RunFingerprint = (fluidmem::core::MonitorStats, SimInstant, String, String);

fn run_call_return(seed: u64, reclaim: Option<ReclaimConfig>) -> RunFingerprint {
    let (telemetry, mut vm) = traced_vm(seed, reclaim);
    let region = vm.map_region(192, PageClass::Anonymous);
    for (page, write) in schedule(seed) {
        vm.access(region.page(page), write);
    }
    vm.drain_writes();
    (
        vm.monitor().stats(),
        vm.clock().now(),
        telemetry.export_prometheus(),
        telemetry.export_chrome_trace(),
    )
}

fn run_pipelined_depth_one(seed: u64, reclaim: Option<ReclaimConfig>) -> RunFingerprint {
    let (telemetry, mut vm) = traced_vm(seed, reclaim);
    let region = vm.map_region(192, PageClass::Anonymous);
    for (page, write) in schedule(seed) {
        match vm.submit_access(BACKEND_PID, region.page(page), write) {
            PipelineSubmit::Ready(_) => {}
            PipelineSubmit::Pending(_) => {
                vm.complete_next_access().expect("one fault is in flight");
            }
        }
        assert_eq!(vm.inflight_len(), 0, "depth 1 never holds a fault");
    }
    vm.drain_writes();
    (
        vm.monitor().stats(),
        vm.clock().now(),
        telemetry.export_prometheus(),
        telemetry.export_chrome_trace(),
    )
}

/// Default-off identity: a config that never mentions reclaim and one
/// that explicitly disables it are the same monitor, byte for byte —
/// no extra RNG draws, clock charges, counters, or spans.
#[test]
fn disabled_reclaim_is_byte_identical_to_default_across_seeds() {
    for &seed in &SEEDS {
        let default = run_call_return(seed, None);
        let disabled = run_call_return(seed, Some(ReclaimConfig::disabled()));
        assert_eq!(default, disabled, "seed {seed}: disabled reclaim diverged");

        let (stats, _, _, trace) = default;
        assert_eq!(stats.background_reclaims, 0, "seed {seed}");
        assert_eq!(stats.direct_reclaims, 0, "seed {seed}");
        assert!(
            !trace.contains("\"reclaim\""),
            "seed {seed}: no reclaim spans may exist with the feature off"
        );
    }
}

/// Depth-1 equivalence survives turning reclaim ON: with at most one
/// fault in flight the evictor always runs inline at the hook, so the
/// pipelined path stays byte-identical to the call-return path.
#[test]
fn depth_one_pipeline_matches_call_return_with_reclaim_enabled() {
    for &seed in &SEEDS {
        let sync = run_call_return(seed, Some(ReclaimConfig::kswapd()));
        let pipe = run_pipelined_depth_one(seed, Some(ReclaimConfig::kswapd()));
        assert_eq!(sync.0, pipe.0, "seed {seed}: stats diverged");
        assert_eq!(sync.1, pipe.1, "seed {seed}: virtual clocks diverged");
        assert_eq!(sync.2, pipe.2, "seed {seed}: Prometheus export diverged");
        assert_eq!(sync.3, pipe.3, "seed {seed}: Chrome trace diverged");

        // The oversubscribed schedule must actually exercise the
        // evictor, and entirely off the fault path.
        assert!(
            sync.0.background_reclaims > 0,
            "seed {seed}: the evictor never ran"
        );
        assert_eq!(
            sync.0.direct_reclaims, 0,
            "seed {seed}: no fault may evict inline at default watermarks"
        );
        assert!(
            sync.3.contains("\"reclaim\""),
            "seed {seed}: reclaim activations must be visible in the trace"
        );
    }
}

/// Drop + timeout + transient-refusal mix on the store transport; the
/// rates are high enough that batched multi-writes fail and requeue.
fn chaotic_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(SimRng::seed_from_u64(seed ^ 0xFA_17))
        .with_drop(0.08)
        .with_timeout(0.06)
        .with_transient_error(0.06)
}

fn chaotic_reclaim_vm(seed: u64, depth: usize) -> FluidMemMemory {
    let clock = SimClock::new();
    let inner = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed));
    let store = FaultInjectingStore::new(Box::new(inner), chaotic_plan(seed), clock.clone());
    FluidMemMemory::new(
        MonitorConfig::new(16)
            .inflight(depth)
            .optimizations(Optimizations::full())
            .reclaim(ReclaimConfig::kswapd()),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed + 1),
    )
}

/// Chaos with the background evictor on: store faults (including failed
/// flush batches, which requeue onto the write list) land while the
/// evictor stages reclaim batches. No page may be lost or double-freed.
#[test]
fn background_reclaim_under_store_chaos_loses_nothing() {
    let mut total_retries = 0u64;
    for &seed in &SEEDS {
        let mut vm = chaotic_reclaim_vm(seed, 4);
        let pages = 64u64;
        let region = vm.map_region(pages, PageClass::Anonymous);
        let token = |p: u64| PageContents::Token(p * 31 + 7);

        // Populate every page, pushing most of the working set through
        // the evictor and the (faulty) flush path.
        for p in 0..pages {
            vm.write_page(region.page(p), token(p));
        }
        vm.drain_writes();

        // Read everything back in waves of four pipelined faults; every
        // refault squeezes the 16-page buffer below its watermarks.
        for wave in 0..pages / 4 {
            for i in 0..4 {
                let p = wave * 4 + i;
                match vm.submit_access(9000 + p, region.page(p), false) {
                    PipelineSubmit::Ready(report) => {
                        assert_ne!(report.outcome, AccessOutcome::MajorFault);
                    }
                    PipelineSubmit::Pending(_) => {}
                }
            }
            while vm.complete_next_access().is_some() {}
            assert_eq!(vm.inflight_len(), 0, "seed {seed}: wave drained");
            for i in 0..4 {
                let p = wave * 4 + i;
                let (contents, report) = vm.read_page(region.page(p));
                assert_eq!(
                    contents,
                    token(p),
                    "seed {seed}: page {p} lost or corrupted under faults"
                );
                assert_eq!(report.outcome, AccessOutcome::Hit, "seed {seed}: page {p}");
            }
        }

        let stats = vm.monitor().stats();
        assert_eq!(stats.lost_pages, 0, "seed {seed}: faults are not data loss");
        assert!(
            stats.background_reclaims > 0,
            "seed {seed}: the evictor must carry the reclaim load"
        );
        assert!(
            vm.monitor().workingset().accounting_balances(),
            "seed {seed}: background evictions must not leak or double-count shadow entries"
        );
        total_retries += stats.read_retries + stats.write_retries + stats.flush_failures;

        vm.drain_writes();
        assert_eq!(
            vm.monitor().pending_writes(),
            0,
            "seed {seed}: write list must drain over a faulty transport"
        );
        assert!(
            vm.monitor().workingset().accounting_balances(),
            "seed {seed}: accounting must still balance after the final drain"
        );
    }
    assert!(
        total_retries > 0,
        "the fault plan must actually force retries somewhere across seeds"
    );
}

/// Determinism: the same seeds with reclaim enabled produce the same
/// schedule, stats, and final clock, run to run.
#[test]
fn chaotic_reclaim_runs_are_deterministic() {
    let run = || {
        let vm = chaotic_reclaim_vm(11, 8);
        let mut set = VcpuSet::new(vm, 8, 128).workload_seed(13);
        let stats = set.run(2_500);
        let vm = set.into_vm();
        (
            stats.faults,
            stats.parked,
            stats.coalesced,
            stats.elapsed,
            vm.monitor().stats(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "chaos + background reclaim must stay deterministic");
    assert!(a.4.background_reclaims > 0, "the evictor must have run");
}
