//! Cross-crate integration: the full FluidMem stack from coordination
//! service to key-value store, with byte-level integrity.

use fluidmem::coord::{CoordCluster, PartitionTable, VmIdentity};
use fluidmem::core::{FluidMemMemory, MonitorConfig};
use fluidmem::kv::{MemcachedStore, RamCloudStore};
use fluidmem::mem::{MemoryBackend, PageClass, PageContents};
use fluidmem::sim::{SimClock, SimRng};

/// The full paper §IV setup: partitions from the replicated table, pages
/// through RAMCloud, byte contents intact across eviction round trips.
#[test]
fn full_stack_page_integrity() {
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(1);

    let mut cluster = CoordCluster::new(3, clock.clone(), rng.fork("coord"));
    PartitionTable::init(&mut cluster).unwrap();
    let partition = PartitionTable::allocate(
        &mut cluster,
        VmIdentity {
            pid: 100,
            hypervisor: 1,
        },
    )
    .unwrap();

    let store = RamCloudStore::new(1 << 28, clock.clone(), rng.fork("store"));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(16),
        Box::new(store),
        partition,
        clock,
        rng.fork("vm"),
    );
    let region = vm.map_region(128, PageClass::Anonymous);

    for i in 0..region.pages() {
        vm.write_page(region.page(i), PageContents::from_byte_fill(i as u8));
    }
    vm.drain_writes();
    // Far more pages than the 16-page buffer: most live remotely now.
    assert!(vm.resident_pages() <= 16);
    assert!(vm.monitor().store().len() >= 100);

    for i in (0..region.pages()).rev() {
        let (contents, _) = vm.read_page(region.page(i));
        assert_eq!(
            contents,
            PageContents::from_byte_fill(i as u8),
            "page {i} corrupted through the full stack"
        );
    }
}

/// Two VMs on the same hypervisor share a store through distinct
/// partitions; their identical guest addresses never collide, and one
/// VM's shutdown does not disturb the other.
#[test]
fn partition_isolation_between_vms() {
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(2);
    let mut cluster = CoordCluster::new(3, clock.clone(), rng.fork("coord"));
    PartitionTable::init(&mut cluster).unwrap();
    let p1 = PartitionTable::allocate(
        &mut cluster,
        VmIdentity {
            pid: 1,
            hypervisor: 1,
        },
    )
    .unwrap();
    let p2 = PartitionTable::allocate(
        &mut cluster,
        VmIdentity {
            pid: 2,
            hypervisor: 1,
        },
    )
    .unwrap();
    assert_ne!(p1, p2);

    let mk = |partition, tag: &str| {
        let store = RamCloudStore::new(1 << 26, clock.clone(), rng.fork(tag));
        FluidMemMemory::new(
            MonitorConfig::new(4),
            Box::new(store),
            partition,
            clock.clone(),
            rng.fork(&format!("{tag}-vm")),
        )
    };
    let mut vm1 = mk(p1, "vm1");
    let mut vm2 = mk(p2, "vm2");
    let r1 = vm1.map_region(32, PageClass::Anonymous);
    let r2 = vm2.map_region(32, PageClass::Anonymous);
    // Same guest page numbers by construction.
    assert_eq!(r1.start(), r2.start());

    for i in 0..32 {
        vm1.write_page(r1.page(i), PageContents::Token(1000 + i));
        vm2.write_page(r2.page(i), PageContents::Token(2000 + i));
    }
    vm1.drain_writes();
    vm2.drain_writes();
    for i in 0..32 {
        assert_eq!(vm1.read_page(r1.page(i)).0, PageContents::Token(1000 + i));
        assert_eq!(vm2.read_page(r2.page(i)).0, PageContents::Token(2000 + i));
    }

    // VM1 shuts down; VM2 is untouched.
    vm1.unregister_region(&r1);
    PartitionTable::release(&mut cluster, p1).unwrap();
    for i in 0..32 {
        assert_eq!(vm2.read_page(r2.page(i)).0, PageContents::Token(2000 + i));
    }
}

/// Full disaggregation means kernel and pinned pages round-trip through
/// the store like any others — the capability swap lacks by design.
#[test]
fn kernel_pages_disaggregate_with_integrity() {
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(3);
    let store = RamCloudStore::new(1 << 26, clock.clone(), rng.fork("store"));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(8),
        Box::new(store),
        fluidmem::coord::PartitionId::new(0),
        clock,
        rng.fork("vm"),
    );
    for class in [
        PageClass::KernelText,
        PageClass::KernelData,
        PageClass::Unevictable,
        PageClass::FileBacked,
    ] {
        let region = vm.map_region(24, class);
        for i in 0..region.pages() {
            vm.write_page(
                region.page(i),
                PageContents::Token(region.start().raw() + i),
            );
        }
    }
    vm.drain_writes();
    assert!(vm.resident_pages() <= 8, "even pinned pages were evicted");
    assert!(vm.monitor().stats().evictions >= 88);
}

/// Memcached's cache semantics (eviction under pressure) surface as lost
/// pages rather than silent corruption.
#[test]
fn memcached_eviction_is_detected_not_silent() {
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(4);
    // A store that can hold only ~32 pages.
    let store = MemcachedStore::new(32 * 4300, clock.clone(), rng.fork("store"));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(8).write_batch(8),
        Box::new(store),
        fluidmem::coord::PartitionId::new(0),
        clock,
        rng.fork("vm"),
    );
    let region = vm.map_region(256, PageClass::Anonymous);
    for i in 0..region.pages() {
        vm.write_page(region.page(i), PageContents::Token(i));
    }
    vm.drain_writes();
    assert!(
        vm.monitor().store().stats().evictions > 0,
        "the tiny cache must have evicted"
    );
    let mut lost = 0;
    for i in 0..region.pages() {
        let (contents, _) = vm.read_page(region.page(i));
        if contents != PageContents::Token(i) {
            lost += 1;
            assert_eq!(
                contents,
                PageContents::Zero,
                "loss must read as zero, never garbage"
            );
        }
    }
    assert!(lost > 0);
    assert_eq!(vm.monitor().stats().lost_pages, lost);
}

/// The coordination service keeps partition allocation safe across a
/// leader failure happening *between* a VM's registration steps.
#[test]
fn partition_allocation_across_failover() {
    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(5);
    let mut cluster = CoordCluster::new(5, clock.clone(), rng.fork("coord"));
    PartitionTable::init(&mut cluster).unwrap();
    let mut seen = std::collections::HashSet::new();
    for pid in 0..40 {
        if pid % 10 == 5 {
            let leader = cluster.leader().unwrap();
            cluster.kill(leader);
            cluster.elect().unwrap();
            cluster.revive(leader);
        }
        let p = PartitionTable::allocate(&mut cluster, VmIdentity { pid, hypervisor: 9 }).unwrap();
        assert!(seen.insert(p), "duplicate partition {p} after failover");
    }
}

/// Live migration over a shared store: the VM moves hypervisors with
/// zero pages copied between hosts and full data integrity (§VII).
#[test]
fn live_migration_preserves_memory() {
    use fluidmem::core::MonitorConfig;
    use fluidmem::kv::SharedStore;

    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(77);
    let shared = SharedStore::new(Box::new(RamCloudStore::new(
        1 << 28,
        clock.clone(),
        rng.fork("store"),
    )));

    let mut source = FluidMemMemory::new(
        MonitorConfig::new(32),
        Box::new(shared.handle()),
        fluidmem::coord::PartitionId::new(9),
        clock.clone(),
        rng.fork("src"),
    );
    let region = source.map_region(128, PageClass::Anonymous);
    for i in 0..region.pages() {
        source.write_page(region.page(i), PageContents::Token(5000 + i));
    }

    let image = source.migrate_out();
    assert_eq!(image.seen.len(), 128);
    assert_eq!(image.capacity, 32);

    let mut dest = FluidMemMemory::migrate_in(
        MonitorConfig::new(32),
        Box::new(shared.handle()),
        image,
        clock,
        rng.fork("dst"),
    );
    for i in 0..region.pages() {
        let (contents, _) = dest.read_page(region.page(i));
        assert_eq!(
            contents,
            PageContents::Token(5000 + i),
            "page {i} lost in migration"
        );
    }
    assert!(dest.resident_pages() <= 32);
}

/// Migration round trips compose: A -> B -> C without loss.
#[test]
fn chained_migrations() {
    use fluidmem::core::MonitorConfig;
    use fluidmem::kv::SharedStore;

    let clock = SimClock::new();
    let rng = SimRng::seed_from_u64(78);
    let shared = SharedStore::new(Box::new(RamCloudStore::new(
        1 << 28,
        clock.clone(),
        rng.fork("store"),
    )));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(16),
        Box::new(shared.handle()),
        fluidmem::coord::PartitionId::new(2),
        clock.clone(),
        rng.fork("h0"),
    );
    let region = vm.map_region(64, PageClass::Anonymous);
    for i in 0..region.pages() {
        vm.write_page(region.page(i), PageContents::Token(i * 3));
    }
    for hop in 0..3 {
        let image = vm.migrate_out();
        vm = FluidMemMemory::migrate_in(
            MonitorConfig::new(16),
            Box::new(shared.handle()),
            image,
            clock.clone(),
            rng.fork(&format!("h{}", hop + 1)),
        );
        // Touch a few pages on each host (the VM keeps running).
        vm.write_page(region.page(hop), PageContents::Token(9000 + hop));
    }
    for i in 0..region.pages() {
        let (contents, _) = vm.read_page(region.page(i));
        let expected = if i < 3 {
            PageContents::Token(9000 + i)
        } else {
            PageContents::Token(i * 3)
        };
        assert_eq!(contents, expected, "page {i} wrong after 3 hops");
    }
}
