//! Acceptance tests for the compressed local tier.
//!
//! Three properties anchor the feature:
//!
//! * **Default-off identity** — with the tier disabled (the default)
//!   the monitor must be byte-identical to one that never heard of the
//!   feature: same stats, virtual clock, Prometheus text, and Chrome
//!   trace across seeds, with zero tier counters.
//! * **Chaos safety** — with the tier enabled over a faulty store
//!   transport (drops, timeouts, transient errors), demotions retried
//!   through the flush path must neither lose nor duplicate a page:
//!   every read returns the last-written contents, the pool's
//!   compressed-byte accounting balances exactly, and the tier audit
//!   finds every tracked page in exactly one place.
//! * **Determinism** — the same seeds with the tier enabled produce
//!   byte-identical stats, clock, and exports, run to run.

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig, Optimizations, ReclaimConfig, TierConfig};
use fluidmem::kv::{FaultInjectingStore, RamCloudStore};
use fluidmem::mem::{MemoryBackend, PageClass, PageContents, PAGE_SIZE};
use fluidmem::sim::{FaultPlan, SimClock, SimInstant, SimRng};
use fluidmem::telemetry::Telemetry;

const SEEDS: [u64; 4] = [3, 17, 271, 65_537];

fn traced_vm(seed: u64, tier: Option<TierConfig>) -> (Telemetry, FluidMemMemory) {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(seed ^ 0x4B56));
    let mut config = MonitorConfig::new(48).optimizations(Optimizations::full());
    if let Some(cfg) = tier {
        config = config.tier(cfg);
    }
    let mut vm = FluidMemMemory::new(
        config,
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(seed),
    );
    let telemetry = Telemetry::new(clock);
    telemetry.enable_spans();
    vm.attach_telemetry(&telemetry);
    (telemetry, vm)
}

/// A working set ~4x the LRU capacity, so the run keeps the buffer full
/// and every eviction faces the admission decision.
fn schedule(seed: u64) -> Vec<(u64, bool)> {
    let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    (0..600)
        .map(|_| (rng.gen_index(192), rng.gen_bool(0.4)))
        .collect()
}

type RunFingerprint = (fluidmem::core::MonitorStats, SimInstant, String, String);

fn run_call_return(seed: u64, tier: Option<TierConfig>) -> RunFingerprint {
    let (telemetry, mut vm) = traced_vm(seed, tier);
    let region = vm.map_region(192, PageClass::Anonymous);
    for (page, write) in schedule(seed) {
        vm.access(region.page(page), write);
    }
    vm.drain_writes();
    (
        vm.monitor().stats(),
        vm.clock().now(),
        telemetry.export_prometheus(),
        telemetry.export_chrome_trace(),
    )
}

/// Default-off identity: a config that never mentions the tier and one
/// that explicitly disables it are the same monitor, byte for byte —
/// no extra RNG draws, clock charges, counters, or spans.
#[test]
fn disabled_tier_is_byte_identical_to_default_across_seeds() {
    for &seed in &SEEDS {
        let default = run_call_return(seed, None);
        let disabled = run_call_return(seed, Some(TierConfig::disabled()));
        assert_eq!(default, disabled, "seed {seed}: disabled tier diverged");

        let stats = &default.0;
        assert_eq!(stats.tier_admits, 0, "seed {seed}");
        assert_eq!(stats.tier_hits, 0, "seed {seed}");
        assert_eq!(stats.tier_misses, 0, "seed {seed}");
        assert_eq!(stats.tier_demotions, 0, "seed {seed}");
        assert_eq!(stats.tier_bypass_incompressible, 0, "seed {seed}");
        assert_eq!(stats.tier_bypass_thrash, 0, "seed {seed}");
    }
}

/// Drop + timeout + transient-refusal mix on the store transport; the
/// rates are high enough that demoted batches fail mid-flush and
/// requeue onto the write list.
fn chaotic_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(SimRng::seed_from_u64(seed ^ 0xFA_17))
        .with_drop(0.08)
        .with_timeout(0.06)
        .with_transient_error(0.06)
}

/// A pool holding ~28 token-sized entries — enough that random refaults
/// over the 64-page set land in it, small enough that the mixed working
/// set keeps crossing the high watermark, forcing demotions through the
/// faulty flush path all run long. The thrash gate is off so pressure,
/// not the working-set estimate, drives every demotion.
fn tiny_chaotic_tier() -> TierConfig {
    TierConfig {
        thrash_gate: false,
        ..TierConfig::pool(2048)
    }
}

fn chaotic_tier_vm(seed: u64) -> FluidMemMemory {
    let clock = SimClock::new();
    let inner = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed));
    let store = FaultInjectingStore::new(Box::new(inner), chaotic_plan(seed), clock.clone());
    FluidMemMemory::new(
        MonitorConfig::new(16)
            .optimizations(Optimizations::full())
            .reclaim(ReclaimConfig::kswapd())
            .tier(tiny_chaotic_tier()),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed + 1),
    )
}

/// Contents for chaos page `p`: two in three pages are token stand-ins
/// (compressible, admitted at 64 bytes each), every third is a page of
/// LCG noise (incompressible, bypasses the pool to the remote store).
fn chaos_contents(p: u64, seed: u64) -> PageContents {
    if p.is_multiple_of(3) {
        let mut x = seed ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut buf = vec![0u8; PAGE_SIZE];
        for b in buf.iter_mut() {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            *b = (x >> 33) as u8;
        }
        PageContents::from_bytes(&buf)
    } else {
        PageContents::Token(p * 31 + 7)
    }
}

/// Chaos with the tier on over a faulty transport: admissions,
/// promotions, and watermark demotions (retried when the flush batch
/// fails) race with background reclaim. No page may be lost,
/// duplicated, or corrupted, and the pool's byte accounting must
/// balance exactly.
#[test]
fn tier_under_store_chaos_loses_nothing() {
    let mut total_retries = 0u64;
    let mut total_hits = 0u64;
    for &seed in &SEEDS {
        let mut vm = chaotic_tier_vm(seed);
        let pages = 64u64;
        let region = vm.map_region(pages, PageClass::Anonymous);

        // Populate everything, pushing most of the working set through
        // admission and the (faulty) demotion flush path.
        for p in 0..pages {
            vm.write_page(region.page(p), chaos_contents(p, seed));
        }

        // Random read waves over the 16-page buffer: every access
        // refaults, some from the pool (promote), some from the store
        // (retried reads), and every refill evicts into the pool again.
        // Random ordering keeps reuse distances short enough that warm
        // pages are still pooled when they refault.
        let mut reads = SimRng::seed_from_u64(seed.wrapping_mul(0xC2B2_AE35));
        for round in 0..6u64 {
            for _ in 0..pages {
                let p = reads.gen_index(pages);
                let (contents, _) = vm.read_page(region.page(p));
                assert_eq!(
                    contents,
                    chaos_contents(p, seed),
                    "seed {seed}: page {p} lost or corrupted in round {round}"
                );
            }
            let audit = vm.monitor().tier_audit();
            assert!(
                audit.is_clean(),
                "seed {seed}: audit failed mid-run in round {round}: {audit:?}"
            );
        }

        let stats = vm.monitor().stats();
        assert_eq!(stats.lost_pages, 0, "seed {seed}: faults are not data loss");
        assert!(
            stats.tier_admits > 0 && stats.tier_demotions > 0,
            "seed {seed}: the tiny pool must cycle admit -> demote under pressure"
        );
        assert!(
            stats.tier_bypass_incompressible > 0,
            "seed {seed}: noise pages must take the bypass path"
        );
        assert!(
            vm.monitor().workingset().accounting_balances(),
            "seed {seed}: tier traffic must not leak or double-count shadow entries"
        );
        total_hits += stats.tier_hits;
        total_retries += stats.read_retries + stats.write_retries + stats.flush_failures;

        vm.drain_writes();
        assert_eq!(
            vm.monitor().pending_writes(),
            0,
            "seed {seed}: write list must drain over a faulty transport"
        );
        let audit = vm.monitor().tier_audit();
        assert!(
            audit.is_clean(),
            "seed {seed}: final audit failed: {audit:?}"
        );
        assert_eq!(audit.lost_pages, 0, "seed {seed}");
        assert_eq!(audit.duplicated_pages, 0, "seed {seed}");
    }
    assert!(
        total_retries > 0,
        "the fault plan must actually force retries somewhere across seeds"
    );
    assert!(
        total_hits > 0,
        "some refault must be served from the pool across seeds"
    );
}

/// Determinism: the same seed with the tier enabled produces the same
/// stats, final clock, and contents, run to run.
#[test]
fn chaotic_tier_runs_are_deterministic() {
    let run = |seed: u64| {
        let mut vm = chaotic_tier_vm(seed);
        let pages = 64u64;
        let region = vm.map_region(pages, PageClass::Anonymous);
        for p in 0..pages {
            vm.write_page(region.page(p), chaos_contents(p, seed));
        }
        for p in 0..pages {
            let (contents, _) = vm.read_page(region.page(p));
            assert_eq!(contents, chaos_contents(p, seed), "seed {seed}: page {p}");
        }
        vm.drain_writes();
        (vm.monitor().stats(), vm.clock().now())
    };
    for &seed in &SEEDS {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a, b, "seed {seed}: chaos + tier must stay deterministic");
    }
}
