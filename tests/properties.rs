//! Property-based tests on the core data structures and invariants.

use fluidmem::coord::{PartitionId, ZnodeTree};
use fluidmem::core::LruBuffer;
use fluidmem::kv::{DramStore, ExternalKey, KeyValueStore, RamCloudStore};
use fluidmem::mem::{PageContents, Vpn};
use fluidmem::sim::stats::{LatencyHistogram, Sample, Summary};
use fluidmem::sim::{prop, SimClock, SimDuration, SimRng};
use fluidmem::swap::SlotAllocator;

/// The external key encoding is a bijection over its domain.
#[test]
fn external_key_round_trips() {
    prop::forall("external-key-round-trips", 256, |rng| {
        let vpn = rng.gen_index(1 << 52);
        let part = rng.gen_index(4096) as u16;
        let key = ExternalKey::new(Vpn::new(vpn), PartitionId::new(part));
        assert_eq!(key.vpn(), Vpn::new(vpn));
        assert_eq!(key.partition(), PartitionId::new(part));
    });
}

/// The LRU buffer never exceeds what was inserted, never yields a page
/// twice without reinsertion, and preserves insertion order for
/// untouched pages.
#[test]
fn lru_buffer_behaves_like_fifo_queue() {
    prop::forall("lru-fifo", 64, |rng| {
        let ops = prop::vec_of(rng, 1, 199, |r| r.gen_index(64));
        let mut lru = LruBuffer::new(1 << 20);
        let mut model: Vec<u64> = Vec::new();
        for &op in &ops {
            if lru.insert(Vpn::new(op)) {
                model.push(op);
            }
        }
        assert_eq!(lru.len() as usize, model.len());
        for expected in model {
            assert_eq!(lru.pop_victim(), Some(Vpn::new(expected)));
        }
        assert_eq!(lru.pop_victim(), None);
    });
}

/// Slot allocation is a partial bijection: no two pages share a slot,
/// and lookups invert each other.
#[test]
fn slot_allocator_is_injective() {
    prop::forall("slot-allocator-injective", 64, |rng| {
        let pages: std::collections::HashSet<u64> =
            prop::vec_of(rng, 1, 299, |r| r.gen_index(10_000))
                .into_iter()
                .collect();
        let mut slots = SlotAllocator::new(4096);
        let mut assigned = std::collections::HashMap::new();
        for &p in &pages {
            if let Some(slot) = slots.allocate(Vpn::new(p)) {
                assert!(assigned.insert(slot, p).is_none(), "slot reused while live");
                assert_eq!(slots.owner_of(slot), Some(Vpn::new(p)));
                assert_eq!(slots.slot_of(Vpn::new(p)), Some(slot));
            }
        }
    });
}

/// Any interleaving of puts/gets/deletes on the log-structured store
/// agrees with a plain map — cleaner runs included.
#[test]
fn ramcloud_matches_model() {
    prop::forall("ramcloud-matches-model", 32, |rng| {
        let ops = prop::vec_of(rng, 1, 399, |r| {
            (r.gen_index(48), r.gen_index(1000), r.gen_bool(0.5))
        });
        let clock = SimClock::new();
        // Small capacity so the cleaner must run under churn.
        let mut store = RamCloudStore::new(96 * 4196, clock, SimRng::seed_from_u64(1));
        let mut model = std::collections::HashMap::new();
        for (k, v, is_delete) in ops {
            let key = ExternalKey::new(Vpn::new(k), PartitionId::new(0));
            if is_delete {
                let existed = store.delete(key);
                assert_eq!(existed, model.remove(&k).is_some());
            } else {
                store.put(key, PageContents::Token(v)).unwrap();
                model.insert(k, v);
            }
        }
        assert_eq!(store.len(), model.len());
        for (k, v) in model {
            let key = ExternalKey::new(Vpn::new(k), PartitionId::new(0));
            assert_eq!(store.get(key).unwrap(), PageContents::Token(v));
        }
    });
}

/// The DRAM store agrees with the same model.
#[test]
fn dram_store_matches_model() {
    prop::forall("dram-matches-model", 32, |rng| {
        let ops = prop::vec_of(rng, 1, 199, |r| (r.gen_index(32), r.gen_index(1000)));
        let clock = SimClock::new();
        let mut store = DramStore::new(1 << 20, clock, SimRng::seed_from_u64(2));
        let mut model = std::collections::HashMap::new();
        for (k, v) in ops {
            let key = ExternalKey::new(Vpn::new(k), PartitionId::new(0));
            store.put(key, PageContents::Token(v)).unwrap();
            model.insert(k, v);
        }
        for (k, v) in model {
            let key = ExternalKey::new(Vpn::new(k), PartitionId::new(0));
            assert_eq!(store.get(key).unwrap(), PageContents::Token(v));
        }
    });
}

/// Streaming summary statistics agree with the exact sample.
#[test]
fn summary_agrees_with_sample() {
    prop::forall("summary-agrees-with-sample", 64, |rng| {
        let values = prop::vec_of(rng, 2, 199, |r| (r.gen_f64() - 0.5) * 2e6);
        let mut summary = Summary::new();
        let mut sample = Sample::new();
        for &v in &values {
            summary.record(v);
            sample.record(v);
        }
        assert!((summary.mean() - sample.mean()).abs() < 1e-6 * (1.0 + sample.mean().abs()));
        assert!((summary.stdev() - sample.stdev()).abs() < 1e-6 * (1.0 + sample.stdev()));
    });
}

/// Histogram CDFs are monotone and end at 1.0 for any input.
#[test]
fn histogram_cdf_is_monotone() {
    prop::forall("histogram-cdf-monotone", 64, |rng| {
        let ns = prop::vec_of(rng, 1, 199, |r| r.gen_range(1, 10_000_000_000));
        let mut h = LatencyHistogram::new();
        for &x in &ns {
            h.record(SimDuration::from_nanos(x));
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert_eq!(h.count(), ns.len() as u64);
    });
}

/// Znode trees stay consistent under arbitrary create/delete sequences:
/// children lists always match existing nodes.
#[test]
fn znode_children_consistent() {
    prop::forall("znode-children-consistent", 64, |rng| {
        let ops = prop::vec_of(rng, 1, 99, |r| {
            (r.gen_index(4), r.gen_index(4), r.gen_bool(0.5))
        });
        let mut tree = ZnodeTree::new();
        for (a, b, create) in ops {
            let parent = format!("/n{a}");
            let child = format!("/n{a}/m{b}");
            if create {
                let _ = tree.create(&parent, vec![], None);
                let _ = tree.create(&child, vec![], None);
            } else {
                let _ = tree.delete(&child);
            }
        }
        for top in tree.children("/") {
            assert!(tree.exists(&top));
            for child in tree.children(&top) {
                assert!(tree.exists(&child));
                let prefix = format!("{top}/");
                assert!(child.starts_with(&prefix));
            }
        }
    });
}

/// Deterministic RNG forks are stable across runs (plain test: no
/// random input needed).
#[test]
fn rng_fork_stability() {
    let a = SimRng::seed_from_u64(5).fork("x").gen_u64();
    let b = SimRng::seed_from_u64(5).fork("x").gen_u64();
    assert_eq!(a, b);
}
