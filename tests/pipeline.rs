//! Acceptance tests for the staged fault pipeline.
//!
//! Two properties anchor the refactor:
//!
//! * **Equivalence** — at `max_inflight = 1` the pipeline is the
//!   call-return path re-staged, not re-implemented: the same access
//!   sequence must leave byte-identical monitor stats, virtual clock,
//!   and telemetry exports (Prometheus text + Chrome trace) for several
//!   seeds.
//! * **Chaos** — with several reads genuinely in flight, injected store
//!   faults (drops, timeouts, transient errors) must not lose data:
//!   every completed fault installs the last-written contents, retries
//!   stay accounted, and the write list drains.

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig, Optimizations, PipelineSubmit};
use fluidmem::kv::{FaultInjectingStore, RamCloudStore};
use fluidmem::mem::{AccessOutcome, MemoryBackend, PageClass, PageContents};
use fluidmem::sim::{FaultPlan, SimClock, SimInstant, SimRng};
use fluidmem::telemetry::Telemetry;
use fluidmem::vm::VcpuSet;

const SEEDS: [u64; 4] = [3, 17, 271, 65_537];

/// The guest pid `FluidMemMemory::do_access` raises faults from; the
/// pipelined run must use the same identity for byte-identical traces.
const BACKEND_PID: u64 = 4242;

fn traced_vm(seed: u64) -> (Telemetry, FluidMemMemory) {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(seed ^ 0x4B56));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(48).optimizations(Optimizations::full()),
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(seed),
    );
    let telemetry = Telemetry::new(clock);
    telemetry.enable_spans();
    vm.attach_telemetry(&telemetry);
    (telemetry, vm)
}

/// A working set ~4x the LRU capacity, so the schedule exercises every
/// path: first touch, refault, steal, and inflight wait.
fn schedule(seed: u64) -> Vec<(u64, bool)> {
    let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    (0..600)
        .map(|_| (rng.gen_index(192), rng.gen_bool(0.4)))
        .collect()
}

type RunFingerprint = (fluidmem::core::MonitorStats, SimInstant, String, String);

fn run_call_return(seed: u64) -> RunFingerprint {
    let (telemetry, mut vm) = traced_vm(seed);
    let region = vm.map_region(192, PageClass::Anonymous);
    for (page, write) in schedule(seed) {
        vm.access(region.page(page), write);
    }
    vm.drain_writes();
    (
        vm.monitor().stats(),
        vm.clock().now(),
        telemetry.export_prometheus(),
        telemetry.export_chrome_trace(),
    )
}

fn run_pipelined_depth_one(seed: u64) -> RunFingerprint {
    let (telemetry, mut vm) = traced_vm(seed);
    let region = vm.map_region(192, PageClass::Anonymous);
    for (page, write) in schedule(seed) {
        match vm.submit_access(BACKEND_PID, region.page(page), write) {
            PipelineSubmit::Ready(_) => {}
            PipelineSubmit::Pending(_) => {
                // Depth 1: the parked fault is the only one in flight;
                // completing it immediately reproduces the blocking call.
                vm.complete_next_access().expect("one fault is in flight");
            }
        }
        assert_eq!(vm.inflight_len(), 0, "depth 1 never holds a fault");
    }
    vm.drain_writes();
    (
        vm.monitor().stats(),
        vm.clock().now(),
        telemetry.export_prometheus(),
        telemetry.export_chrome_trace(),
    )
}

/// The headline equivalence property: for every seed, depth-1 pipelined
/// execution is byte-identical to the call-return path — same stats,
/// same virtual clock, same Prometheus text, same Chrome trace.
#[test]
fn depth_one_pipeline_matches_call_return_across_seeds() {
    for &seed in &SEEDS {
        let (sync_stats, sync_now, sync_prom, sync_trace) = run_call_return(seed);
        let (pipe_stats, pipe_now, pipe_prom, pipe_trace) = run_pipelined_depth_one(seed);
        assert_eq!(sync_stats, pipe_stats, "seed {seed}: stats diverged");
        assert_eq!(sync_now, pipe_now, "seed {seed}: virtual clocks diverged");
        assert_eq!(
            sync_prom, pipe_prom,
            "seed {seed}: Prometheus export diverged"
        );
        assert_eq!(sync_trace, pipe_trace, "seed {seed}: Chrome trace diverged");
    }
}

/// Drop + timeout + transient-refusal mix on the store transport.
fn chaotic_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(SimRng::seed_from_u64(seed ^ 0xFA_17))
        .with_drop(0.08)
        .with_timeout(0.06)
        .with_transient_error(0.06)
}

fn chaotic_pipelined_vm(seed: u64, depth: usize) -> FluidMemMemory {
    let clock = SimClock::new();
    let inner = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed));
    let store = FaultInjectingStore::new(Box::new(inner), chaotic_plan(seed), clock.clone());
    FluidMemMemory::new(
        MonitorConfig::new(16)
            .inflight(depth)
            .optimizations(Optimizations::full()),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed + 1),
    )
}

/// Chaos: store faults land while several reads are genuinely in
/// flight. No read may surface stale or lost contents, retry accounting
/// must light up, and the write list must drain afterwards.
#[test]
fn injected_store_faults_with_overlapping_reads_lose_nothing() {
    let mut total_retries = 0u64;
    for &seed in &SEEDS {
        let mut vm = chaotic_pipelined_vm(seed, 4);
        let pages = 64u64;
        let region = vm.map_region(pages, PageClass::Anonymous);
        let token = |p: u64| PageContents::Token(p * 31 + 7);

        // Populate every page through the sync path, then push the
        // working set out to the (faulty) store.
        for p in 0..pages {
            vm.write_page(region.page(p), token(p));
        }
        vm.drain_writes();

        // Read everything back in waves of four pipelined faults.
        let mut deepest = 0;
        for wave in 0..pages / 4 {
            let mut parked = 0;
            for i in 0..4 {
                let p = wave * 4 + i;
                match vm.submit_access(9000 + p, region.page(p), false) {
                    PipelineSubmit::Ready(report) => {
                        assert_ne!(report.outcome, AccessOutcome::MajorFault);
                    }
                    PipelineSubmit::Pending(_) => parked += 1,
                }
                deepest = deepest.max(vm.inflight_len());
            }
            while vm.complete_next_access().is_some() {}
            assert_eq!(vm.inflight_len(), 0, "seed {seed}: wave drained");
            // Every page in the wave is now mapped with its last write.
            for i in 0..4 {
                let p = wave * 4 + i;
                let (contents, report) = vm.read_page(region.page(p));
                assert_eq!(
                    contents,
                    token(p),
                    "seed {seed}: page {p} lost or corrupted under faults"
                );
                assert_eq!(
                    report.outcome,
                    AccessOutcome::Hit,
                    "seed {seed}: completed page {p} must be resident"
                );
            }
            let _ = parked;
        }
        assert!(
            deepest >= 2,
            "seed {seed}: the chaos run must overlap reads (deepest {deepest})"
        );

        let stats = vm.monitor().stats();
        assert_eq!(stats.lost_pages, 0, "seed {seed}: faults are not data loss");
        total_retries += stats.read_retries + stats.write_retries;

        vm.drain_writes();
        assert_eq!(
            vm.monitor().pending_writes(),
            0,
            "seed {seed}: write list must drain over a faulty transport"
        );
    }
    assert!(
        total_retries > 0,
        "the fault plan must actually force retries somewhere across seeds"
    );
}

/// The vCPU-set driver is deterministic under chaos too: same seeds,
/// same fault plan, bit-identical schedule and stats.
#[test]
fn chaotic_pipelined_vcpu_runs_are_deterministic() {
    let run = || {
        let vm = chaotic_pipelined_vm(11, 8);
        let mut set = VcpuSet::new(vm, 8, 128).workload_seed(13);
        let stats = set.run(2_500);
        let vm = set.into_vm();
        (
            stats.faults,
            stats.parked,
            stats.coalesced,
            stats.elapsed,
            vm.monitor().stats(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "chaos + pipelining must stay deterministic");
    assert!(a.1 > 0, "the oversubscribed run must park reads");
}
