//! Acceptance tests for the trend-detecting stride prefetcher.
//!
//! Four properties anchor the feature:
//!
//! * **Inertness** — `Stride` with `max_depth = 0` (or no trend) is the
//!   policy's off switch: byte-identical stats, clock, and telemetry to
//!   `PrefetchPolicy::None` on both the call-return path and the deep
//!   pipeline, for several seeds.
//! * **Equivalence** — with the policy *active*, the depth-1 pipeline
//!   still reproduces the call-return path exactly: speculation is
//!   staged work, not a second implementation.
//! * **Safety** — store failures on speculative reads degrade (counted,
//!   never panicking, never losing data), and a chaotic transport under
//!   pipelined prefetch keeps every page's last-written contents and
//!   balanced shadow accounting.
//! * **Restraint** — speculation never churns the LRU: a buffer at
//!   capacity gets zero issued prefetches and exactly one eviction per
//!   demand load, with the suppression counters saying why.

use fluidmem::coord::PartitionId;
use fluidmem::core::{
    FluidMemMemory, MonitorConfig, Optimizations, PipelineSubmit, PrefetchPolicy,
};
use fluidmem::kv::{FaultInjectingStore, RamCloudStore};
use fluidmem::mem::{AccessOutcome, MemoryBackend, PageClass, PageContents};
use fluidmem::sim::{FaultEvent, FaultKind, FaultPlan, SimClock, SimDuration, SimInstant, SimRng};
use fluidmem::telemetry::Telemetry;

const SEEDS: [u64; 4] = [3, 17, 271, 65_537];

/// The guest pid `FluidMemMemory::do_access` raises faults from; the
/// depth-1 pipelined run must use the same identity for byte-identical
/// traces.
const BACKEND_PID: u64 = 4242;

/// Pages in the test region. Strided bursts below stay inside it.
const REGION_PAGES: u64 = 224;

fn traced_vm(
    seed: u64,
    capacity: u64,
    policy: PrefetchPolicy,
    depth: usize,
) -> (Telemetry, FluidMemMemory) {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(seed ^ 0x4B56));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(capacity)
            .optimizations(Optimizations::full())
            .prefetch(policy)
            .inflight(depth),
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(seed),
    );
    let telemetry = Telemetry::new(clock);
    telemetry.enable_spans();
    vm.attach_telemetry(&telemetry);
    (telemetry, vm)
}

/// Strided bursts (the detector's food) interleaved with random
/// scatter (what makes it decay): the schedule walks every policy
/// branch — detect, hold, decay, re-detect.
fn schedule(seed: u64) -> Vec<(u64, bool)> {
    let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let mut ops = Vec::new();
    for _ in 0..12 {
        let start = rng.gen_index(128);
        let stride = 1 + rng.gen_index(3);
        for k in 0..24 {
            ops.push((start + k * stride, rng.gen_bool(0.3)));
        }
        for _ in 0..12 {
            ops.push((rng.gen_index(REGION_PAGES), rng.gen_bool(0.5)));
        }
    }
    ops
}

type RunFingerprint = (fluidmem::core::MonitorStats, SimInstant, String, String);

fn fingerprint(telemetry: &Telemetry, vm: &FluidMemMemory) -> RunFingerprint {
    (
        vm.monitor().stats(),
        vm.clock().now(),
        telemetry.export_prometheus(),
        telemetry.export_chrome_trace(),
    )
}

fn run_call_return(seed: u64, policy: PrefetchPolicy) -> RunFingerprint {
    let (telemetry, mut vm) = traced_vm(seed, 48, policy, 1);
    let region = vm.map_region(REGION_PAGES, PageClass::Anonymous);
    for (page, write) in schedule(seed) {
        vm.access(region.page(page), write);
    }
    vm.drain_writes();
    fingerprint(&telemetry, &vm)
}

fn run_pipelined(seed: u64, policy: PrefetchPolicy, depth: usize) -> RunFingerprint {
    let (telemetry, mut vm) = traced_vm(seed, 48, policy, depth);
    let region = vm.map_region(REGION_PAGES, PageClass::Anonymous);
    for (i, (page, write)) in schedule(seed).into_iter().enumerate() {
        if let PipelineSubmit::Pending(_) =
            vm.submit_access(9_000 + i as u64, region.page(page), write)
        {
            if vm.inflight_len() >= depth {
                vm.complete_next_access();
            }
        }
    }
    while vm.complete_next_access().is_some() {}
    vm.drain_writes();
    fingerprint(&telemetry, &vm)
}

/// `Stride { max_depth: 0 }` is the off switch: the detector may watch
/// the fault stream, but the run must be byte-identical to
/// `PrefetchPolicy::None` — stats, virtual clock, Prometheus text, and
/// Chrome trace — on the call-return path and the depth-8 pipeline.
#[test]
fn disabled_stride_is_byte_identical_to_none_across_seeds() {
    let off = PrefetchPolicy::Stride {
        window: 16,
        max_depth: 0,
    };
    for &seed in &SEEDS {
        let none = run_call_return(seed, PrefetchPolicy::None);
        let disabled = run_call_return(seed, off);
        assert_eq!(none, disabled, "seed {seed}: call-return run diverged");
        let none = run_pipelined(seed, PrefetchPolicy::None, 8);
        let disabled = run_pipelined(seed, off, 8);
        assert_eq!(none, disabled, "seed {seed}: depth-8 run diverged");
    }
}

/// A run with the policy *active*: warm the region through a small
/// buffer, grow capacity so the gates open, then replay the strided
/// schedule either through `access` or the depth-1 pipeline.
fn stride_active_run(seed: u64, pipelined: bool) -> RunFingerprint {
    let policy = PrefetchPolicy::Stride {
        window: 4,
        max_depth: 4,
    };
    let (telemetry, mut vm) = traced_vm(seed, 32, policy, 1);
    let region = vm.map_region(REGION_PAGES, PageClass::Anonymous);
    for p in 0..REGION_PAGES {
        vm.write_page(region.page(p), PageContents::Token(p * 13 + 5));
    }
    vm.drain_writes();
    vm.set_local_capacity(256).unwrap();
    for (page, write) in schedule(seed) {
        if pipelined {
            match vm.submit_access(BACKEND_PID, region.page(page), write) {
                PipelineSubmit::Ready(_) => {}
                PipelineSubmit::Pending(_) => {
                    vm.complete_next_access().expect("one fault is in flight");
                }
            }
        } else {
            vm.access(region.page(page), write);
        }
    }
    vm.drain_writes();
    fingerprint(&telemetry, &vm)
}

/// With speculation actually issuing, depth-1 pipelined execution is
/// still byte-identical to the call-return path.
#[test]
fn active_stride_depth_one_pipeline_matches_call_return() {
    for &seed in &SEEDS {
        let sync = stride_active_run(seed, false);
        let pipe = stride_active_run(seed, true);
        assert!(
            sync.0.prefetch_issued > 0,
            "seed {seed}: the equivalence is vacuous unless prefetch issues: {:?}",
            sync.0
        );
        assert_eq!(sync, pipe, "seed {seed}: runs diverged");
    }
}

/// Drop + timeout + transient-refusal mix on the store transport.
fn chaotic_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(SimRng::seed_from_u64(seed ^ 0xFA_17))
        .with_drop(0.08)
        .with_timeout(0.06)
        .with_transient_error(0.06)
}

/// Chaos: injected transport faults land on demand *and* speculative
/// reads while several of each are in flight. Speculation must not lose
/// or corrupt anything, and the working-set shadow accounting must
/// still balance (every prefetch-installed page is forgotten, not
/// leaked).
#[test]
fn chaotic_store_with_pipelined_prefetch_loses_nothing() {
    for &seed in &SEEDS {
        let clock = SimClock::new();
        let inner = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(seed));
        let store = FaultInjectingStore::new(Box::new(inner), chaotic_plan(seed), clock.clone());
        let mut vm = FluidMemMemory::new(
            MonitorConfig::new(24)
                .inflight(4)
                .prefetch(PrefetchPolicy::Stride {
                    window: 4,
                    max_depth: 4,
                })
                .optimizations(Optimizations::full()),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(seed + 1),
        );
        let pages = 96u64;
        let region = vm.map_region(pages, PageClass::Anonymous);
        let token = |p: u64| PageContents::Token(p * 31 + 7);
        for p in 0..pages {
            vm.write_page(region.page(p), token(p));
        }
        vm.drain_writes();
        // Headroom for speculation: the whole set fits from here on.
        vm.set_local_capacity(128).unwrap();

        // Sequential read-back in waves of four pipelined faults — the
        // detector locks onto stride 1 and speculates ahead of the
        // waves over the faulty transport.
        for wave in 0..pages / 4 {
            for i in 0..4 {
                let p = wave * 4 + i;
                let _ = vm.submit_access(9_000 + p, region.page(p), false);
            }
            while vm.complete_next_access().is_some() {}
        }

        let stats = vm.monitor().stats();
        assert!(
            stats.prefetch_issued > 0,
            "seed {seed}: chaos must run with live speculation: {stats:?}"
        );
        assert!(
            stats.prefetch_hits > 0,
            "seed {seed}: the sequential walk must absorb some flights: {stats:?}"
        );
        assert_eq!(stats.lost_pages, 0, "seed {seed}: faults are not data loss");
        for p in 0..pages {
            let (contents, _) = vm.read_page(region.page(p));
            assert_eq!(
                contents,
                token(p),
                "seed {seed}: page {p} lost or corrupted under chaotic prefetch"
            );
        }
        assert!(
            vm.monitor().workingset().accounting_balances(),
            "seed {seed}: shadow accounting out of balance"
        );
        vm.drain_writes();
        assert_eq!(vm.monitor().pending_writes(), 0, "seed {seed}");
    }
}

/// A *non-retryable* store error on a speculative read must be dropped
/// and counted, never panicked on — the page is exactly where it was,
/// and the demand path still serves it (bugfix: `maybe_prefetch` used
/// to unwrap the store result like the demand path does).
#[test]
fn fatal_store_error_on_a_prefetch_read_degrades_instead_of_panicking() {
    let clock = SimClock::new();
    let inner = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(7));
    // Op 0 is the drain's single multi-write (the long flush interval
    // and huge batch keep the flusher quiet before it), op 1 the demand
    // read of page 0; the first speculative read is op 2 — poison
    // exactly that one.
    let plan = FaultPlan::new(SimRng::seed_from_u64(0)).script(FaultEvent {
        at_op: 2,
        kind: FaultKind::Fatal,
    });
    let store = FaultInjectingStore::new(Box::new(inner), plan, clock.clone());
    let mut config = MonitorConfig::new(16)
        .write_batch(1000)
        .prefetch(PrefetchPolicy::Sequential { window: 4 })
        .optimizations(Optimizations::full());
    config.flush_interval = SimDuration::from_secs(1);
    let mut vm = FluidMemMemory::new(
        config,
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(9),
    );
    let region = vm.map_region(64, PageClass::Anonymous);
    let token = |p: u64| PageContents::Token(p * 17 + 3);
    for p in 0..64 {
        vm.write_page(region.page(p), token(p));
    }
    vm.drain_writes();
    vm.set_local_capacity(48).unwrap();

    // Refault page 0: the demand read succeeds, the prefetch of page 1
    // hits the scripted fatal error and is dropped; pages 2..=4 land.
    let (contents, _) = vm.read_page(region.page(0));
    assert_eq!(contents, token(0));
    let stats = vm.monitor().stats();
    assert_eq!(stats.prefetch_fatal_errors, 1, "{stats:?}");
    assert_eq!(
        stats.prefetched_pages, 3,
        "pages 2..=4 still land: {stats:?}"
    );

    // The dropped page is exactly where it was: the demand path pays a
    // full fault and gets the last-written contents.
    let (contents, report) = vm.read_page(region.page(1));
    assert_eq!(contents, token(1));
    assert_eq!(report.outcome, AccessOutcome::MajorFault);
}

/// Regression for the capacity-churn bug: a buffer with zero headroom
/// gets *no* speculation — zero issued reads, exactly one eviction per
/// demand load — and the suppression counters say why. (The old code
/// issued into the full buffer and let `evict_to_capacity` churn warm
/// pages back out.)
#[test]
fn prefetch_at_capacity_issues_nothing_and_churns_nothing() {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(5));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(16)
            .prefetch(PrefetchPolicy::Stride {
                window: 4,
                max_depth: 4,
            })
            .optimizations(Optimizations::full()),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(6),
    );
    let region = vm.map_region(64, PageClass::Anonymous);
    for p in 0..64 {
        vm.write_page(region.page(p), PageContents::Token(p));
    }
    vm.drain_writes();
    let before = vm.monitor().stats();
    assert_eq!(before.evictions, 48, "population spills all but capacity");

    // Strided refaults with the buffer exactly full.
    let refaults = 12u64;
    for k in 0..refaults {
        let _ = vm.read_page(region.page(k * 2));
    }

    let after = vm.monitor().stats();
    assert_eq!(after.prefetch_issued, 0, "{after:?}");
    assert_eq!(after.prefetched_pages, 0, "{after:?}");
    assert_eq!(
        after.evictions - before.evictions,
        refaults,
        "exactly one eviction per demand load — zero speculative churn: {after:?}"
    );
    assert_eq!(
        after.prefetch_suppressed_thrash + after.prefetch_suppressed_headroom,
        refaults,
        "every suppressed round is accounted: {after:?}"
    );
    assert_eq!(vm.monitor().resident_pages(), 16);
}

/// The headroom gate releases as soon as capacity grows: the same VM
/// that was suppressed at zero headroom speculates normally after a
/// resize up.
#[test]
fn headroom_gate_suppresses_until_capacity_grows() {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(13));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(16)
            .prefetch(PrefetchPolicy::Stride {
                window: 4,
                max_depth: 4,
            })
            .optimizations(Optimizations::full()),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(14),
    );
    let region = vm.map_region(24, PageClass::Anonymous);
    // Spill only the first three pages, then open a sliver of headroom
    // (2 < depth 4). The WSS estimate is resident + refault distance,
    // so the tiny distance keeps it under capacity and the headroom
    // gate is the only one in play.
    for p in 0..19 {
        vm.write_page(region.page(p), PageContents::Token(p));
    }
    vm.drain_writes();
    vm.set_local_capacity(18).unwrap();

    let _ = vm.read_page(region.page(2));
    let mid = vm.monitor().stats();
    assert_eq!(mid.prefetch_issued, 0, "{mid:?}");
    assert!(mid.prefetch_suppressed_headroom >= 1, "{mid:?}");
    assert_eq!(mid.prefetch_suppressed_thrash, 0, "{mid:?}");

    vm.set_local_capacity(32).unwrap();
    let _ = vm.read_page(region.page(0));
    let after = vm.monitor().stats();
    assert!(after.prefetch_issued > 0, "{after:?}");
    assert!(after.prefetched_pages > 0, "{after:?}");
}
