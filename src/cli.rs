//! The `fluidmemctl` command-line interface.
//!
//! A small operator-style CLI over the simulation testbed, mirroring how
//! the real FluidMem ships a control utility alongside the monitor:
//!
//! ```text
//! fluidmemctl backends
//! fluidmemctl pmbench --backend fluidmem-ramcloud --overcommit 4
//! fluidmemctl graph500 --backend swap-nvmeof --scale 13 --ratio 2.4
//! fluidmemctl resize --from 4096 --to 180
//! fluidmem trace --scenario pmbench --out trace.json
//! ```
//!
//! The parser is dependency-free and unit-tested; the binary in
//! `src/bin/fluidmemctl.rs` is a thin wrapper.

use crate::testbed::{BackendKind, Testbed};
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig};
use fluidmem_kv::{KeyValueStore, RamCloudStore};
use fluidmem_mem::{MemoryBackend, PageClass};
use fluidmem_sim::{SimClock, SimDuration, SimRng};
use fluidmem_telemetry::Telemetry;
use fluidmem_workloads::pmbench::{self, PmbenchConfig};

/// Builds a FluidMem-backed memory for tracing, on the store the backend
/// kind names.
fn traced_fluidmem(
    backend: BackendKind,
    local_pages: u64,
    clock: SimClock,
    seed: u64,
) -> FluidMemMemory {
    let store_rng = SimRng::seed_from_u64(seed.wrapping_add(1));
    let store: Box<dyn KeyValueStore> = match backend {
        BackendKind::FluidMemDram => Box::new(fluidmem_kv::DramStore::new(
            1 << 30,
            clock.clone(),
            store_rng,
        )),
        BackendKind::FluidMemMemcached => Box::new(fluidmem_kv::MemcachedStore::new(
            1 << 30,
            clock.clone(),
            store_rng,
        )),
        _ => Box::new(RamCloudStore::new(1 << 30, clock.clone(), store_rng)),
    };
    FluidMemMemory::new(
        MonitorConfig::new(local_pages),
        store,
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed.wrapping_add(2)),
    )
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// List the six evaluated backend configurations.
    Backends,
    /// Run the pmbench microbenchmark.
    Pmbench {
        /// Which configuration to run.
        backend: BackendKind,
        /// Working set as a multiple of local DRAM.
        overcommit: f64,
        /// Local DRAM pages.
        local_pages: u64,
        /// Seed.
        seed: u64,
    },
    /// Run Graph500 BFS.
    Graph500 {
        /// Which configuration to run.
        backend: BackendKind,
        /// log2 of the vertex count.
        scale: u32,
        /// WSS-to-DRAM ratio.
        ratio: f64,
        /// Seed.
        seed: u64,
    },
    /// Demonstrate an operator resize of a FluidMem VM.
    Resize {
        /// Initial capacity in pages.
        from: u64,
        /// Target capacity in pages.
        to: u64,
    },
    /// Run a scenario with spans enabled; print a timeline or write a
    /// Chrome trace-event file loadable in Perfetto / `chrome://tracing`.
    Trace {
        /// What to run: `timeline` (a hand-sized fault sequence printed
        /// as text) or `pmbench` (the microbenchmark, exported as JSON).
        scenario: String,
        /// Which FluidMem configuration to trace.
        backend: BackendKind,
        /// Where to write the Chrome trace JSON (pmbench scenario).
        out: Option<String>,
        /// Seed.
        seed: u64,
    },
    /// Show usage.
    Help,
}

const USAGE: &str = "\
fluidmemctl — drive the FluidMem reproduction testbed

USAGE:
  fluidmemctl backends
  fluidmemctl pmbench  [--backend <name>] [--overcommit <x>] [--local-pages <n>] [--seed <n>]
  fluidmemctl graph500 [--backend <name>] [--scale <n>] [--ratio <x>] [--seed <n>]
  fluidmemctl resize   [--from <pages>] [--to <pages>]
  fluidmemctl trace    [--scenario timeline|pmbench] [--backend <name>] [--out <file>] [--seed <n>]
  fluidmemctl help

The `fluidmem` binary is an alias for `fluidmemctl`:
  fluidmem trace --scenario pmbench --out trace.json

BACKENDS:
  fluidmem-dram | fluidmem-ramcloud | fluidmem-memcached
  swap-dram | swap-nvmeof | swap-ssd";

/// Parses a backend name.
///
/// # Errors
///
/// Returns a message listing valid names on failure.
pub fn parse_backend(name: &str) -> Result<BackendKind, String> {
    match name {
        "fluidmem-dram" => Ok(BackendKind::FluidMemDram),
        "fluidmem-ramcloud" => Ok(BackendKind::FluidMemRamCloud),
        "fluidmem-memcached" => Ok(BackendKind::FluidMemMemcached),
        "swap-dram" => Ok(BackendKind::SwapDram),
        "swap-nvmeof" => Ok(BackendKind::SwapNvmeof),
        "swap-ssd" => Ok(BackendKind::SwapSsd),
        other => Err(format!(
            "unknown backend {other:?}; valid: fluidmem-dram, fluidmem-ramcloud, \
             fluidmem-memcached, swap-dram, swap-nvmeof, swap-ssd"
        )),
    }
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} requires a value"))
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, unknown flags,
/// or malformed values.
pub fn parse(args: &[String]) -> Result<CliCommand, String> {
    let Some(command) = args.first() else {
        return Ok(CliCommand::Help);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(CliCommand::Help),
        "backends" => Ok(CliCommand::Backends),
        "trace" => {
            let mut scenario = "timeline".to_string();
            let mut backend = BackendKind::FluidMemRamCloud;
            let mut out = None;
            let mut seed = 42;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--scenario" => scenario = take_value(args, &mut i, "--scenario")?.to_string(),
                    "--backend" => backend = parse_backend(take_value(args, &mut i, "--backend")?)?,
                    "--out" => out = Some(take_value(args, &mut i, "--out")?.to_string()),
                    "--seed" => {
                        seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| "--seed expects an integer".to_string())?
                    }
                    other => return Err(format!("unknown flag {other:?} for trace")),
                }
                i += 1;
            }
            if !matches!(scenario.as_str(), "timeline" | "pmbench") {
                return Err(format!(
                    "unknown scenario {scenario:?}; valid: timeline, pmbench"
                ));
            }
            if !backend.is_fluidmem() {
                return Err(
                    "trace needs a fluidmem-* backend (spans come from the monitor)".to_string(),
                );
            }
            Ok(CliCommand::Trace {
                scenario,
                backend,
                out,
                seed,
            })
        }
        "pmbench" => {
            let mut backend = BackendKind::FluidMemRamCloud;
            let mut overcommit = 4.0;
            let mut local_pages = 4096;
            let mut seed = 42;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--backend" => backend = parse_backend(take_value(args, &mut i, "--backend")?)?,
                    "--overcommit" => {
                        overcommit = take_value(args, &mut i, "--overcommit")?
                            .parse()
                            .map_err(|_| "--overcommit expects a number".to_string())?
                    }
                    "--local-pages" => {
                        local_pages = take_value(args, &mut i, "--local-pages")?
                            .parse()
                            .map_err(|_| "--local-pages expects an integer".to_string())?
                    }
                    "--seed" => {
                        seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| "--seed expects an integer".to_string())?
                    }
                    other => return Err(format!("unknown flag {other:?} for pmbench")),
                }
                i += 1;
            }
            if overcommit <= 0.0 {
                return Err("--overcommit must be positive".to_string());
            }
            Ok(CliCommand::Pmbench {
                backend,
                overcommit,
                local_pages,
                seed,
            })
        }
        "graph500" => {
            let mut backend = BackendKind::FluidMemRamCloud;
            let mut scale = 12;
            let mut ratio = 2.4;
            let mut seed = 42;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--backend" => backend = parse_backend(take_value(args, &mut i, "--backend")?)?,
                    "--scale" => {
                        scale = take_value(args, &mut i, "--scale")?
                            .parse()
                            .map_err(|_| "--scale expects an integer".to_string())?
                    }
                    "--ratio" => {
                        ratio = take_value(args, &mut i, "--ratio")?
                            .parse()
                            .map_err(|_| "--ratio expects a number".to_string())?
                    }
                    "--seed" => {
                        seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| "--seed expects an integer".to_string())?
                    }
                    other => return Err(format!("unknown flag {other:?} for graph500")),
                }
                i += 1;
            }
            if !(6..=22).contains(&scale) {
                return Err("--scale must be between 6 and 22 for CLI runs".to_string());
            }
            Ok(CliCommand::Graph500 {
                backend,
                scale,
                ratio,
                seed,
            })
        }
        "resize" => {
            let mut from = 4096;
            let mut to = 180;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--from" => {
                        from = take_value(args, &mut i, "--from")?
                            .parse()
                            .map_err(|_| "--from expects an integer".to_string())?
                    }
                    "--to" => {
                        to = take_value(args, &mut i, "--to")?
                            .parse()
                            .map_err(|_| "--to expects an integer".to_string())?
                    }
                    other => return Err(format!("unknown flag {other:?} for resize")),
                }
                i += 1;
            }
            Ok(CliCommand::Resize { from, to })
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

/// Executes a parsed command, writing human-readable output to stdout.
pub fn execute(command: CliCommand) {
    match command {
        CliCommand::Help => println!("{USAGE}"),
        CliCommand::Backends => {
            for kind in BackendKind::ALL {
                println!(
                    "{:<22} {}",
                    kind.label(),
                    if kind.is_fluidmem() {
                        "full disaggregation (userfaultfd monitor)"
                    } else {
                        "partial disaggregation (kernel swap)"
                    }
                );
            }
        }
        CliCommand::Pmbench {
            backend,
            overcommit,
            local_pages,
            seed,
        } => {
            let mut testbed = Testbed::scaled_down(64);
            testbed.local_dram_pages = local_pages;
            let mut b = testbed.build(backend, seed);
            let config = PmbenchConfig {
                wss_pages: ((local_pages as f64) * overcommit) as u64,
                duration: SimDuration::from_secs(1),
                read_ratio: 0.5,
                max_accesses: 200_000,
            };
            let mut rng = SimRng::seed_from_u64(seed);
            let report = pmbench::run(b.as_mut(), &config, &mut rng);
            println!(
                "{}: avg {:.2}µs over {} accesses (hits {:.1}%, p99 {:.1}µs)",
                backend.label(),
                report.avg_latency_us(),
                report.accesses,
                report.hit_fraction() * 100.0,
                report.all.percentile_us(0.99),
            );
        }
        CliCommand::Graph500 {
            backend,
            scale,
            ratio,
            seed,
        } => {
            use fluidmem_workloads::graph500::{
                generate_edges, run_benchmark, CsrGraph, Graph500Config,
            };
            let config = Graph500Config::quick(scale, 4);
            let edges = generate_edges(&config);
            let graph = CsrGraph::build(config.vertices(), &edges);
            let wss = (16 * config.vertices() + 4 * graph.adjacency_len())
                .div_ceil(4096)
                .max(64);
            let mut testbed = Testbed::scaled_down(64);
            testbed.local_dram_pages = ((wss as f64) / ratio) as u64;
            let mut b = testbed.build(backend, seed);
            let mut rng = SimRng::seed_from_u64(seed);
            let report = run_benchmark(b.as_mut(), &graph, &config, &mut rng);
            println!(
                "{}: {:.2} MTEPS at scale {scale} (WSS {:.0}% of DRAM, {} major faults)",
                backend.label(),
                report.harmonic_mean_teps() / 1e6,
                ratio * 100.0,
                b.counters().major_faults,
            );
        }
        CliCommand::Resize { from, to } => {
            let clock = SimClock::new();
            let store = RamCloudStore::new(2 << 30, clock.clone(), SimRng::seed_from_u64(1));
            let mut vm = FluidMemMemory::new(
                MonitorConfig::new(from),
                Box::new(store),
                PartitionId::new(0),
                clock.clone(),
                SimRng::seed_from_u64(2),
            );
            let region = vm.map_region(from, PageClass::Anonymous);
            for i in 0..region.pages() {
                vm.access(region.page(i), true);
            }
            println!("VM populated: {} pages resident", vm.resident_pages());
            let t0 = clock.now();
            vm.set_local_capacity(to).unwrap();
            println!(
                "resized {} -> {} pages in {} of virtual time ({} evictions)",
                from,
                to,
                clock.now() - t0,
                vm.monitor().stats().evictions,
            );
        }
        CliCommand::Trace {
            scenario,
            backend,
            out,
            seed,
        } => match scenario.as_str() {
            "timeline" => {
                let clock = SimClock::new();
                let mut vm = traced_fluidmem(backend, 2, clock, seed);
                vm.monitor_mut().enable_tracing();
                let region = vm.map_region(8, PageClass::Anonymous);
                for i in 0..4 {
                    vm.access(region.page(i), true);
                }
                vm.drain_writes();
                vm.access(region.page(0), false);
                for event in vm.monitor().tracer().events() {
                    println!("{event}");
                }
            }
            "pmbench" => {
                let clock = SimClock::new();
                let local_pages = 512;
                let mut vm = traced_fluidmem(backend, local_pages, clock, seed);
                let telemetry = Telemetry::new(vm.clock().clone());
                telemetry.enable_spans();
                vm.attach_telemetry(&telemetry);
                let config = PmbenchConfig {
                    wss_pages: local_pages * 2,
                    duration: SimDuration::from_secs(1),
                    read_ratio: 0.5,
                    max_accesses: 20_000,
                };
                let mut rng = SimRng::seed_from_u64(seed);
                let report = pmbench::run(&mut vm, &config, &mut rng);
                let json = telemetry.export_chrome_trace();
                let events = fluidmem_telemetry::validate_chrome_trace(&json)
                    .expect("exported trace must be valid Chrome trace JSON");
                let path = out.unwrap_or_else(|| "trace.json".to_string());
                if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                }
                println!(
                    "{}: {} accesses traced, avg {:.2}\u{b5}s; {events} spans -> {path}",
                    backend.label(),
                    report.accesses,
                    report.avg_latency_us(),
                );
                println!("open in https://ui.perfetto.dev or chrome://tracing");
            }
            other => unreachable!("parser rejects scenario {other:?}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse(&[]), Ok(CliCommand::Help));
        assert_eq!(parse(&argv("help")), Ok(CliCommand::Help));
        assert_eq!(parse(&argv("--help")), Ok(CliCommand::Help));
    }

    #[test]
    fn backends_and_trace_parse() {
        assert_eq!(parse(&argv("backends")), Ok(CliCommand::Backends));
        assert_eq!(
            parse(&argv("trace")),
            Ok(CliCommand::Trace {
                scenario: "timeline".to_string(),
                backend: BackendKind::FluidMemRamCloud,
                out: None,
                seed: 42
            })
        );
        assert_eq!(
            parse(&argv(
                "trace --scenario pmbench --backend fluidmem-dram --out t.json --seed 7"
            )),
            Ok(CliCommand::Trace {
                scenario: "pmbench".to_string(),
                backend: BackendKind::FluidMemDram,
                out: Some("t.json".to_string()),
                seed: 7
            })
        );
        assert!(parse(&argv("trace --scenario frob"))
            .unwrap_err()
            .contains("unknown scenario"));
        assert!(parse(&argv("trace --backend swap-ssd"))
            .unwrap_err()
            .contains("fluidmem-*"));
    }

    #[test]
    fn pmbench_defaults_and_flags() {
        assert_eq!(
            parse(&argv("pmbench")),
            Ok(CliCommand::Pmbench {
                backend: BackendKind::FluidMemRamCloud,
                overcommit: 4.0,
                local_pages: 4096,
                seed: 42
            })
        );
        assert_eq!(
            parse(&argv(
                "pmbench --backend swap-ssd --overcommit 2.5 --local-pages 512 --seed 7"
            )),
            Ok(CliCommand::Pmbench {
                backend: BackendKind::SwapSsd,
                overcommit: 2.5,
                local_pages: 512,
                seed: 7
            })
        );
    }

    #[test]
    fn graph500_flags() {
        assert_eq!(
            parse(&argv(
                "graph500 --scale 10 --ratio 1.2 --backend fluidmem-dram"
            )),
            Ok(CliCommand::Graph500 {
                backend: BackendKind::FluidMemDram,
                scale: 10,
                ratio: 1.2,
                seed: 42
            })
        );
    }

    #[test]
    fn resize_flags() {
        assert_eq!(
            parse(&argv("resize --from 1000 --to 80")),
            Ok(CliCommand::Resize { from: 1000, to: 80 })
        );
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&argv("frobnicate"))
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse(&argv("pmbench --backend"))
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&argv("pmbench --backend floppy"))
            .unwrap_err()
            .contains("unknown backend"));
        assert!(parse(&argv("pmbench --overcommit -1"))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&argv("graph500 --scale 40"))
            .unwrap_err()
            .contains("between"));
        assert!(parse(&argv("resize --sideways 3"))
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn every_backend_name_round_trips() {
        for (name, kind) in [
            ("fluidmem-dram", BackendKind::FluidMemDram),
            ("fluidmem-ramcloud", BackendKind::FluidMemRamCloud),
            ("fluidmem-memcached", BackendKind::FluidMemMemcached),
            ("swap-dram", BackendKind::SwapDram),
            ("swap-nvmeof", BackendKind::SwapNvmeof),
            ("swap-ssd", BackendKind::SwapSsd),
        ] {
            assert_eq!(parse_backend(name), Ok(kind));
        }
    }
}
