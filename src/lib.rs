//! # FluidMem — full, flexible, and fast memory disaggregation
//!
//! A Rust reproduction of *FluidMem: Full, Flexible, and Fast Memory
//! Disaggregation for the Cloud* (Caldwell et al., ICDCS 2020).
//!
//! This umbrella crate re-exports the workspace's component crates and
//! provides the [`testbed`] module, which wires the six evaluated
//! configurations (FluidMem over DRAM / RAMCloud / Memcached, swap over
//! DRAM / NVMeoF / SSD) exactly as the paper's §VI test platform does.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fluidmem_block as block;
pub use fluidmem_coord as coord;
pub use fluidmem_core as core;
pub use fluidmem_host as host;
pub use fluidmem_kv as kv;
pub use fluidmem_mem as mem;
pub use fluidmem_sim as sim;
pub use fluidmem_swap as swap;
pub use fluidmem_telemetry as telemetry;
pub use fluidmem_uffd as uffd;
pub use fluidmem_vm as vm;
pub use fluidmem_workloads as workloads;

pub mod cli;
pub mod testbed;
