//! `fluidmem`: alias binary for `fluidmemctl`.
//!
//! See `fluidmem::cli` for the commands; run `fluidmem help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fluidmem::cli::parse(&args) {
        Ok(command) => fluidmem::cli::execute(command),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
