//! The §VI-A test platform: constructors for the six evaluated
//! configurations.
//!
//! | Mechanism | Backend | Transport |
//! |---|---|---|
//! | FluidMem | DRAM (in-process store) | — |
//! | FluidMem | RAMCloud | InfiniBand verbs |
//! | FluidMem | Memcached | TCP over IP-over-IB |
//! | Swap | DRAM (`/dev/pmem0`) | — |
//! | Swap | NVMeoF target | FDR InfiniBand RDMA |
//! | Swap | local SSD | — |
//!
//! # Example
//!
//! ```
//! use fluidmem::testbed::{BackendKind, Testbed};
//!
//! let testbed = Testbed::scaled_down(64); // 1/64th of the paper's sizes
//! let mut backend = testbed.build(BackendKind::FluidMemRamCloud, 1);
//! assert_eq!(backend.label(), "FluidMem/ramcloud");
//! assert_eq!(backend.local_capacity_pages(), testbed.local_dram_pages);
//! ```

use fluidmem_block::{NvmeofDevice, PmemDevice, SsdDevice};
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig, Optimizations};
use fluidmem_kv::{DramStore, MemcachedStore, RamCloudStore};
use fluidmem_mem::MemoryBackend;
use fluidmem_sim::{SimClock, SimRng};
use fluidmem_swap::{SwapBackedMemory, SwapConfig};

/// One of the six evaluated configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// FluidMem over the in-process DRAM store.
    FluidMemDram,
    /// FluidMem over the RAMCloud-like store (InfiniBand verbs).
    FluidMemRamCloud,
    /// FluidMem over the Memcached-like store (IP-over-IB TCP).
    FluidMemMemcached,
    /// Swap to a DRAM-backed block device.
    SwapDram,
    /// Swap to an NVMe-over-Fabrics target.
    SwapNvmeof,
    /// Swap to a local SSD.
    SwapSsd,
}

impl BackendKind {
    /// All six, in the paper's figure order.
    pub const ALL: [BackendKind; 6] = [
        BackendKind::FluidMemDram,
        BackendKind::FluidMemRamCloud,
        BackendKind::FluidMemMemcached,
        BackendKind::SwapDram,
        BackendKind::SwapNvmeof,
        BackendKind::SwapSsd,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::FluidMemDram => "FluidMem DRAM",
            BackendKind::FluidMemRamCloud => "FluidMem RAMCloud",
            BackendKind::FluidMemMemcached => "FluidMem memcached",
            BackendKind::SwapDram => "Swap DRAM",
            BackendKind::SwapNvmeof => "Swap NVMeoF",
            BackendKind::SwapSsd => "Swap SSD",
        }
    }

    /// Whether this is a FluidMem configuration.
    pub fn is_fluidmem(self) -> bool {
        matches!(
            self,
            BackendKind::FluidMemDram
                | BackendKind::FluidMemRamCloud
                | BackendKind::FluidMemMemcached
        )
    }
}

/// Sizing and tuning for a testbed instance.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// The VM's local DRAM allotment in pages (paper: 1 GB = 262 144).
    pub local_dram_pages: u64,
    /// Remote store capacity in bytes (paper: 25 GB RAMCloud).
    pub store_bytes: usize,
    /// Swap / NVMeoF device capacity in 4 KB blocks (paper: 20 GB).
    pub device_blocks: u64,
    /// Monitor optimizations for the FluidMem configurations.
    pub optimizations: Optimizations,
}

impl Testbed {
    /// The paper's full-size platform: 1 GB local DRAM, 25 GB store,
    /// 20 GB swap devices.
    pub fn paper() -> Self {
        Testbed {
            local_dram_pages: 262_144,
            store_bytes: 25 << 30,
            device_blocks: (20u64 << 30) / 4096,
            optimizations: Optimizations::full(),
        }
    }

    /// A platform scaled down by `denominator` in every dimension, for
    /// fast runs with identical local-to-remote proportions.
    pub fn scaled_down(denominator: u64) -> Self {
        let d = denominator.max(1);
        Testbed {
            local_dram_pages: (262_144 / d).max(16),
            store_bytes: ((25usize << 30) / d as usize).max(1 << 20),
            device_blocks: ((20u64 << 30) / 4096 / d).max(256),
            optimizations: Optimizations::full(),
        }
    }

    /// Builds one configuration. `seed` controls all randomness, so a
    /// (kind, seed, testbed) triple is fully reproducible.
    pub fn build(&self, kind: BackendKind, seed: u64) -> Box<dyn MemoryBackend> {
        let clock = SimClock::new();
        let root = SimRng::seed_from_u64(seed ^ 0xf1u64.rotate_left(32));
        match kind {
            BackendKind::FluidMemDram => {
                let store = DramStore::new(self.store_bytes, clock.clone(), root.fork("store"));
                Box::new(self.fluidmem(Box::new(store), clock, root))
            }
            BackendKind::FluidMemRamCloud => {
                let store = RamCloudStore::new(self.store_bytes, clock.clone(), root.fork("store"));
                Box::new(self.fluidmem(Box::new(store), clock, root))
            }
            BackendKind::FluidMemMemcached => {
                let store =
                    MemcachedStore::new(self.store_bytes, clock.clone(), root.fork("store"));
                Box::new(self.fluidmem(Box::new(store), clock, root))
            }
            BackendKind::SwapDram => {
                let dev = PmemDevice::new(self.device_blocks, clock.clone(), root.fork("swapdev"));
                Box::new(self.swap(Box::new(dev), clock, root))
            }
            BackendKind::SwapNvmeof => {
                let dev =
                    NvmeofDevice::new(self.device_blocks, clock.clone(), root.fork("swapdev"));
                Box::new(self.swap(Box::new(dev), clock, root))
            }
            BackendKind::SwapSsd => {
                let dev = SsdDevice::new(self.device_blocks, clock.clone(), root.fork("swapdev"));
                Box::new(self.swap(Box::new(dev), clock, root))
            }
        }
    }

    /// Builds all six configurations with the same seed.
    pub fn build_all(&self, seed: u64) -> Vec<Box<dyn MemoryBackend>> {
        BackendKind::ALL
            .iter()
            .map(|&k| self.build(k, seed))
            .collect()
    }

    fn fluidmem(
        &self,
        store: Box<dyn fluidmem_kv::KeyValueStore>,
        clock: SimClock,
        root: SimRng,
    ) -> FluidMemMemory {
        let config = MonitorConfig::new(self.local_dram_pages).optimizations(self.optimizations);
        FluidMemMemory::new(
            config,
            store,
            PartitionId::new(0),
            clock,
            root.fork("fluidmem"),
        )
    }

    fn swap(
        &self,
        device: Box<dyn fluidmem_block::BlockDevice>,
        clock: SimClock,
        root: SimRng,
    ) -> SwapBackedMemory {
        // The guest filesystem always lives on the local SSD.
        let fs = SsdDevice::new(self.device_blocks, clock.clone(), root.fork("fsdev"));
        SwapBackedMemory::new(
            SwapConfig::paper_default(self.local_dram_pages),
            device,
            Box::new(fs),
            clock,
            root.fork("swap"),
        )
    }
}
